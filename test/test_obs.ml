(* Telemetry registry (lib/obs) and the accounting regressions it was
   built to catch: unaccounted C-string scans and the per-run enclave
   heap leak. *)

open Twine_obs
open Twine_sgx

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- registry --- *)

let test_counters () =
  let obs = Obs.create () in
  Alcotest.(check int) "absent counter reads 0" 0 (Obs.value obs "x");
  Obs.inc obs "x";
  Obs.inc obs "x";
  Obs.add obs "y" 40;
  Obs.add obs "y" 2;
  Alcotest.(check int) "inc twice" 2 (Obs.value obs "x");
  Alcotest.(check int) "add accumulates" 42 (Obs.value obs "y");
  Alcotest.(check (list (pair string int)))
    "sorted snapshot"
    [ ("x", 2); ("y", 42) ]
    (Obs.counters obs);
  Obs.reset obs;
  Alcotest.(check int) "reset clears" 0 (Obs.value obs "x")

let test_histograms () =
  let obs = Obs.create () in
  Alcotest.(check bool) "absent histogram" true (Obs.hstat obs "h" = None);
  List.iter (Obs.observe obs "h") [ 5; 1; 9 ];
  match Obs.hstat obs "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      Alcotest.(check int) "count" 3 h.Obs.count;
      Alcotest.(check int) "sum" 15 h.Obs.sum;
      Alcotest.(check int) "min" 1 h.Obs.min;
      Alcotest.(check int) "max" 9 h.Obs.max

let test_quantile_edges () =
  let obs = Obs.create () in
  Alcotest.(check (option int)) "missing histogram" None (Obs.quantile obs "q" 0.5);
  (* empty name, single sample: every quantile is that sample *)
  Obs.observe obs "one" 37;
  List.iter
    (fun q ->
      Alcotest.(check (option int))
        (Printf.sprintf "single sample at q=%.2f" q)
        (Some 37) (Obs.quantile obs "one" q))
    [ 0.0; 0.5; 0.99; 1.0 ];
  (* extremes clamp to observed min/max, not bucket bounds *)
  List.iter (Obs.observe obs "two") [ 3; 900 ];
  Alcotest.(check (option int)) "q=0 is the min" (Some 3)
    (Obs.quantile obs "two" 0.0);
  Alcotest.(check (option int)) "q=1 is the max" (Some 900)
    (Obs.quantile obs "two" 1.0);
  (* exact power-of-two boundary sits in the bucket it upper-bounds *)
  let obs2 = Obs.create () in
  Obs.observe obs2 "b" 4096;
  Alcotest.(check (option int)) "boundary value round-trips" (Some 4096)
    (Obs.quantile obs2 "b" 0.5);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Obs.quantile: q outside [0,1]") (fun () ->
      ignore (Obs.quantile obs "one" 1.5))

let test_quantile_interpolation () =
  (* one sample at every value of the binade [512, 1024): the bucket is
     uniformly full, so the interpolated nearest-rank estimate must hit
     the true median (the 256th of 512 sits mid-slice at 767), where
     the old upper-bound answer was 1023 — biased a near-full bucket
     width high *)
  let obs = Obs.create () in
  for v = 512 to 1023 do Obs.observe obs "u" v done;
  (match Obs.quantile obs "u" 0.5 with
  | None -> Alcotest.fail "histogram missing"
  | Some v ->
      Alcotest.(check bool)
        (Printf.sprintf "uniform bucket p50 interpolates (got %d, want ~767)" v)
        true (abs (v - 767) <= 1));
  (* a quarter of the way in, same idea *)
  match Obs.quantile obs "u" 0.25 with
  | None -> Alcotest.fail "histogram missing"
  | Some v ->
      Alcotest.(check bool)
        (Printf.sprintf "uniform bucket p25 interpolates (got %d, want ~639)" v)
        true (abs (v - 639) <= 1)

let test_quantile_rank_rounding () =
  (* 0.99 *. 100. = 99.00000000000001: the nearest-rank index must stay
     99, not spill into the single outlier at rank 100 *)
  let obs = Obs.create () in
  for _ = 1 to 99 do Obs.observe obs "lat" 10 done;
  Obs.observe obs "lat" 1_000_000;
  (match Obs.quantile obs "lat" 0.99 with
  | None -> Alcotest.fail "histogram missing"
  | Some v ->
      Alcotest.(check bool)
        (Printf.sprintf "p99 of 99x10 + 1 outlier stays small (got %d)" v)
        true (v < 100));
  Alcotest.(check (option int)) "p100 is the outlier" (Some 1_000_000)
    (Obs.quantile obs "lat" 1.0)

let test_exemplars () =
  let obs = Obs.create () in
  (* samples without exemplars still work *)
  Obs.observe obs "h" 50;
  (match Obs.quantile_exemplars obs "h" 0.5 with
  | Some (_, ids) -> Alcotest.(check (list int)) "no ids recorded" [] ids
  | None -> Alcotest.fail "histogram missing");
  (* ids ride with their sample's bucket, newest first, capped at 8 *)
  for i = 1 to 12 do Obs.observe ~exemplar:i obs "h" (40 + i) done;
  (match Obs.quantile_exemplars obs "h" 0.99 with
  | None -> Alcotest.fail "histogram missing"
  | Some (est, ids) ->
      Alcotest.(check bool) "estimate in the tail bucket" true (est >= 52);
      Alcotest.(check (list int)) "newest first, capped"
        [ 12; 11; 10; 9; 8; 7; 6; 5 ] ids);
  (* a different bucket keeps its own exemplars *)
  Obs.observe ~exemplar:99 obs "h" 1_000_000;
  match Obs.quantile_exemplars obs "h" 1.0 with
  | Some (_, ids) -> Alcotest.(check (list int)) "outlier bucket" [ 99 ] ids
  | None -> Alcotest.fail "histogram missing"

(* Spans on a hand-cranked virtual clock: the parent's self time must
   exclude the child's. *)
let test_span_nesting () =
  let t = ref 0 in
  let obs = Obs.create ~now:(fun () -> !t) () in
  let advance n = t := !t + n in
  let result =
    Obs.in_span obs "outer" (fun () ->
        advance 10;
        Alcotest.(check int) "depth inside outer" 1 (Obs.depth obs);
        Obs.in_span obs "inner" (fun () -> advance 5);
        advance 3;
        "ok")
  in
  Alcotest.(check string) "thunk result returned" "ok" result;
  Alcotest.(check int) "depth back to 0" 0 (Obs.depth obs);
  (match Obs.sstat obs "outer" with
  | None -> Alcotest.fail "outer span missing"
  | Some s ->
      Alcotest.(check int) "outer calls" 1 s.Obs.calls;
      Alcotest.(check int) "outer total" 18 s.Obs.total_ns;
      Alcotest.(check int) "outer self excludes inner" 13 s.Obs.self_ns);
  match Obs.sstat obs "inner" with
  | None -> Alcotest.fail "inner span missing"
  | Some s ->
      Alcotest.(check int) "inner total" 5 s.Obs.total_ns;
      Alcotest.(check int) "inner self" 5 s.Obs.self_ns

let test_span_exception_safe () =
  let t = ref 0 in
  let obs = Obs.create ~now:(fun () -> !t) () in
  (try
     Obs.in_span obs "boom" (fun () ->
         t := !t + 7;
         failwith "inner failure")
   with Failure _ -> ());
  Alcotest.(check int) "span stack unwound" 0 (Obs.depth obs);
  match Obs.sstat obs "boom" with
  | None -> Alcotest.fail "span not recorded"
  | Some s -> Alcotest.(check int) "time still attributed" 7 s.Obs.total_ns

(* --- report rendering --- *)

let test_report_render () =
  let obs = Obs.create () in
  Obs.add obs "epc.hit" 3;
  Obs.add obs "epc.fault" 1;
  Obs.add obs "ipfs.cache.miss" 8;
  Obs.observe obs "sgx.launch" 2_000_000;
  Obs.in_span obs "twine.main" (fun () -> ());
  let r = Report.render obs in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "report contains %S" needle)
        true
        (contains r needle))
    [ "epc.hit"; "epc.hit_rate"; "75.0%"; "ipfs.cache.hit_rate"; "0.0%";
      "sgx.launch"; "twine.main"; "-- spans --" ]

let test_report_json () =
  let obs = Obs.create () in
  Obs.add obs "wasi.hostcall" 5;
  Obs.observe obs "sgx.epc_fault" 10526;
  Obs.in_span obs "twine.main" (fun () -> ());
  let j = Report.to_json obs in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "json contains %S" needle)
        true
        (contains j needle))
    [ {|"counters":{"wasi.hostcall":5}|};
      {|"sgx.epc_fault":{"count":1,"sum_ns":10526,"min_ns":10526,"max_ns":10526}|};
      {|"twine.main":{"calls":1,"total_ns":0,"self_ns":0}|} ]

(* --- baseline JSON: round-trip and verdict rendering --- *)

let test_baseline_round_trip () =
  let b =
    Baseline.create
      ~meta:[ ("generator", "test"); ("note", "round trip") ]
      [ Baseline.v ~tol:0.02 "report.virtual_ns" 12345;
        Baseline.v ~tol:0.0 "report.fuel" 2647;
        Baseline.vf "polybench.atax.native_wall_ns" 98765.0 ]
  in
  match Baseline.of_string (Baseline.to_string b) with
  | Error msg -> Alcotest.fail msg
  | Ok b' ->
      Alcotest.(check bool) "meta survives" true (b.Baseline.meta = b'.Baseline.meta);
      Alcotest.(check int) "metric count" 3 (List.length b'.Baseline.metrics);
      List.iter2
        (fun (p, (m : Baseline.metric)) (p', (m' : Baseline.metric)) ->
          Alcotest.(check string) "path order preserved" p p';
          Alcotest.(check (float 0.0)) (p ^ " value") m.Baseline.value m'.Baseline.value;
          Alcotest.(check bool) (p ^ " tol survives (incl. None)") true
            (m.Baseline.tol = m'.Baseline.tol))
        b.Baseline.metrics b'.Baseline.metrics

let test_baseline_verdicts () =
  let baseline =
    Baseline.create
      [ Baseline.v ~tol:0.1 "guarded" 100;
        Baseline.v "informational" 100;
        Baseline.v ~tol:0.0 "vanished" 7 ]
  in
  let current =
    Baseline.create
      [ Baseline.v ~tol:0.1 "guarded" 105;
        (* informational drifts wildly but must not gate *)
        Baseline.v "informational" 900 ]
  in
  let vs = Baseline.check ~baseline ~current in
  let find p = List.find (fun v -> v.Baseline.path = p) vs in
  Alcotest.(check bool) "in-band metric ok" true (find "guarded").Baseline.ok;
  Alcotest.(check bool) "informational never gates" true
    (find "informational").Baseline.ok;
  Alcotest.(check bool) "missing metric fails" false (find "vanished").Baseline.ok;
  Alcotest.(check bool) "missing metric has no got" true
    ((find "vanished").Baseline.got = None);
  let table = Baseline.render vs in
  Alcotest.(check bool) "informational renders as info, not ok" true
    (contains table "info");
  Alcotest.(check bool) "missing renders FAIL" true (contains table "FAIL");
  Alcotest.(check bool) "missing shows as missing" true (contains table "missing")

(* Golden shape check: the report JSON parses back and exposes exactly
   the members downstream tooling keys on, including the ledger. *)
let test_report_json_shape () =
  let machine = Machine.create ~seed:"obs-shape" () in
  let obs = machine.Machine.obs in
  Machine.charge machine "sgx.launch" 1000;
  Machine.charge machine ~account:"mee.copy" "sgx.copy_in" 500;
  Obs.inc obs "epc.hit";
  Obs.in_span obs "twine.main" (fun () -> ());
  let j = Report.to_json ~ledger:(Machine.ledger machine) obs in
  match Json.parse j with
  | Error msg -> Alcotest.fail ("report JSON does not parse: " ^ msg)
  | Ok json ->
      let member_exn path j =
        match Json.member path j with
        | Some v -> v
        | None -> Alcotest.fail (Printf.sprintf "missing member %S" path)
      in
      List.iter
        (fun m -> ignore (member_exn m json))
        [ "counters"; "histograms"; "spans"; "ledger" ];
      let ledger = member_exn "ledger" json in
      Alcotest.(check (option string)) "ledger schema"
        (Some Ledger.schema)
        (Json.to_str (member_exn "schema" ledger));
      Alcotest.(check (option (float 0.0))) "booked total in JSON" (Some 1500.)
        (Json.to_float (member_exn "booked_ns" ledger));
      let copy = member_exn "mee.copy" (member_exn "accounts" ledger) in
      Alcotest.(check (option (float 0.0))) "account ns" (Some 500.)
        (Json.to_float (member_exn "ns" copy));
      Alcotest.(check (option (float 0.0))) "histogram sum round-trips" (Some 500.)
        (Json.to_float
           (member_exn "sum_ns" (member_exn "sgx.copy_in" (member_exn "histograms" json))))

(* --- regression: C-string loads feed the access hook / EPC --- *)

let test_cstring_epc_pressure () =
  let machine = Machine.create ~seed:"obs-cstr" ~epc_bytes:(8 * 4096) () in
  let enclave = Enclave.create machine ~code:"cstr" () in
  let mem = Twine_wasm.Memory.create { Twine_wasm.Types.min = 1; max = Some 1 } in
  (* a string spanning four 4 KiB EPC pages, written before the hook *)
  Twine_wasm.Memory.store_bytes mem 0 (String.make 16000 'a');
  let base = Enclave.reserve enclave (Twine_wasm.Memory.size_bytes mem) in
  Twine.Runtime.install_memory_hook enclave ~base mem;
  let faults0 = Epc.faults machine.Machine.epc in
  let s = Twine_wasm.Memory.load_cstring mem 0 in
  Alcotest.(check int) "string length" 16000 (String.length s);
  let faults = Epc.faults machine.Machine.epc - faults0 in
  Alcotest.(check bool)
    (Printf.sprintf "cstring scan faults pages in (%d faults)" faults)
    true (faults >= 4)

let test_cstring_out_of_bounds () =
  let mem = Twine_wasm.Memory.create { Twine_wasm.Types.min = 1; max = Some 1 } in
  (* no NUL anywhere: the scan must trap, not run off the end *)
  Twine_wasm.Memory.store_bytes mem 0
    (String.make (Twine_wasm.Memory.size_bytes mem) 'x');
  Alcotest.check_raises "unterminated string traps"
    (Twine_wasm.Values.Trap "unterminated string") (fun () ->
      ignore (Twine_wasm.Memory.load_cstring mem 0))

(* --- regression: repeated runs do not leak enclave heap --- *)

let hello_wat =
  {|(module
      (import "wasi_snapshot_preview1" "fd_write"
        (func $fd_write (param i32 i32 i32 i32) (result i32)))
      (memory (export "memory") 1)
      (data (i32.const 16) "hi\n")
      (func (export "_start")
        (i32.store (i32.const 0) (i32.const 16))
        (i32.store (i32.const 4) (i32.const 3))
        (drop (call $fd_write (i32.const 1) (i32.const 0) (i32.const 1) (i32.const 8)))))|}

let test_run_does_not_leak_heap () =
  let machine = Machine.create ~seed:"obs-leak" () in
  let rt = Twine.Runtime.create machine in
  Twine.Runtime.deploy rt (Twine_wasm.Wat.parse hello_wat);
  let run () = ignore (Twine.Runtime.run rt) in
  run ();
  let size1 = Enclave.size_bytes (Twine.Runtime.enclave rt) in
  for _ = 1 to 5 do run () done;
  let size2 = Enclave.size_bytes (Twine.Runtime.enclave rt) in
  Alcotest.(check int) "enclave size stable across runs" size1 size2

let test_run_counts_surface () =
  let machine = Machine.create ~seed:"obs-counts" () in
  let rt = Twine.Runtime.create machine in
  Twine.Runtime.deploy rt (Twine_wasm.Wat.parse hello_wat);
  ignore (Twine.Runtime.run rt);
  let obs = machine.Machine.obs in
  Alcotest.(check bool) "ecalls counted" true (Obs.value obs "sgx.ecall" >= 2);
  Alcotest.(check bool) "wasi dispatch counted" true
    (Obs.value obs "wasi.hostcall" >= 1);
  Alcotest.(check int) "fd_write counted" 1 (Obs.value obs "wasi.fd_write");
  Alcotest.(check bool) "run span recorded" true
    (Obs.sstat obs "twine.main" <> None)

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "histograms" `Quick test_histograms;
          Alcotest.test_case "quantile edge cases" `Quick test_quantile_edges;
          Alcotest.test_case "quantile interpolation" `Quick
            test_quantile_interpolation;
          Alcotest.test_case "quantile rank rounding" `Quick
            test_quantile_rank_rounding;
          Alcotest.test_case "exemplars" `Quick test_exemplars;
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span exception safety" `Quick test_span_exception_safe;
        ] );
      ( "report",
        [
          Alcotest.test_case "table" `Quick test_report_render;
          Alcotest.test_case "json" `Quick test_report_json;
          Alcotest.test_case "json shape (golden)" `Quick test_report_json_shape;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "round trip" `Quick test_baseline_round_trip;
          Alcotest.test_case "verdicts" `Quick test_baseline_verdicts;
        ] );
      ( "accounting regressions",
        [
          Alcotest.test_case "cstring EPC pressure" `Quick test_cstring_epc_pressure;
          Alcotest.test_case "cstring bounds" `Quick test_cstring_out_of_bounds;
          Alcotest.test_case "no heap leak across runs" `Quick test_run_does_not_leak_heap;
          Alcotest.test_case "run telemetry surfaces" `Quick test_run_counts_surface;
        ] );
    ]
