(* Cycle ledger: booking, the conservation audit, the function x account
   matrix, serialisation, and differential attribution — plus the
   machine-level invariant that every charge site books (zero residue)
   and the sub-ns carry of charge_cycles. *)

open Twine_obs
open Twine_sgx

let page = Costs.page_size

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- booking and audit basics --- *)

let test_book_and_accounts () =
  let l = Ledger.create () in
  Ledger.book l "a.x" 10;
  Ledger.book l "a.x" 5;
  Ledger.book l "a.y" 7;
  Ledger.book l "b" 0;  (* zero ns still counts an event *)
  Alcotest.(check int) "a.x ns" 15 (Ledger.ns l "a.x");
  Alcotest.(check int) "a.x events" 2 (Ledger.events l "a.x");
  Alcotest.(check int) "b events" 1 (Ledger.events l "b");
  Alcotest.(check int) "total" 22 (Ledger.total l);
  Alcotest.(check (list string)) "sorted accounts" [ "a.x"; "a.y"; "b" ]
    (List.map fst (Ledger.accounts l));
  Alcotest.check_raises "negative booking rejected"
    (Invalid_argument "Ledger.book: negative nanoseconds") (fun () ->
      Ledger.book l "a.x" (-1))

let test_audit_residue () =
  let clock = ref 0 in
  let l = Ledger.create ~now:(fun () -> !clock) () in
  clock := 100;
  Ledger.book l "work" 60;
  let a = Ledger.audit l in
  Alcotest.(check int) "elapsed" 100 a.Ledger.elapsed_ns;
  Alcotest.(check int) "booked" 60 a.Ledger.booked_ns;
  Alcotest.(check int) "residue flags unbooked time" 40 a.Ledger.residue_ns;
  Alcotest.(check bool) "unbalanced" false (Ledger.balanced l);
  Ledger.book l "work" 40;
  Alcotest.(check bool) "balanced once fully booked" true (Ledger.balanced l);
  let rendered = Ledger.render l in
  Alcotest.(check bool) "render carries the audit line" true
    (contains rendered "books balance")

let test_reset () =
  let clock = ref 0 in
  let l = Ledger.create ~now:(fun () -> !clock) () in
  clock := 50;
  Ledger.book l "x" 50;
  Ledger.set_context l (Some "f");
  Ledger.book l "x" 0;
  Ledger.reset l;
  Alcotest.(check int) "accounts cleared" 0 (List.length (Ledger.accounts l));
  Alcotest.(check bool) "context cleared" true (Ledger.context l = None);
  Alcotest.(check int) "elapsed restarts" 0 (Ledger.audit l).Ledger.elapsed_ns;
  clock := 80;
  Ledger.book l "y" 30;
  Alcotest.(check bool) "balances against the new epoch" true (Ledger.balanced l)

(* --- machine-level conservation --- *)

let test_machine_conservation () =
  let m = Machine.create ~seed:"ledger-test" ~epc_bytes:(8 * page) () in
  let e = Enclave.create m ~heap_bytes:(4 * page) ~code:"ledger" () in
  ignore (Enclave.ecall e (fun _ -> Enclave.ocall e (fun () -> ())));
  let addr = Enclave.alloc e (16 * page) in
  Enclave.touch e ~addr ~len:(16 * page);
  Enclave.memset e (2 * page);
  Enclave.copy_in e 1000;
  Enclave.copy_out e 2000;
  let a = Ledger.audit (Machine.ledger m) in
  Alcotest.(check int) "zero residue" 0 a.Ledger.residue_ns;
  Alcotest.(check bool) "time actually passed" true (a.Ledger.elapsed_ns > 0);
  Alcotest.(check int) "booked = elapsed = clock" (Machine.now_ns m)
    a.Ledger.booked_ns;
  (* the remapped accounts took the bookings, not the histogram labels *)
  let l = Machine.ledger m in
  Alcotest.(check bool) "transitions split by direction" true
    (Ledger.ns l "sgx.transition.ecall" > 0 && Ledger.ns l "sgx.transition.ocall" > 0);
  Alcotest.(check bool) "memset under mee" true (Ledger.ns l "mee.memset" > 0);
  Alcotest.(check bool) "copies under mee" true (Ledger.ns l "mee.copy" > 0);
  Alcotest.(check bool) "paging split hit/evict" true
    (Ledger.ns l "epc.fault" > 0 && Ledger.ns l "epc.evict" > 0)

let test_cycle_carry () =
  (* Regression: 1-cycle charges used to round to 0 ns each, losing the
     whole cost. With the carry, 3800 of them at 3.8 GHz make ~1000 ns,
     and the ledger still balances (the clock and the books both see the
     carried amounts). *)
  let m = Machine.create ~seed:"carry" () in
  for _ = 1 to 3800 do
    Machine.charge_cycles m "tick" 1
  done;
  let ns = Machine.now_ns m in
  Alcotest.(check bool)
    (Printf.sprintf "3800 one-cycle charges ~ 1000 ns (got %d)" ns)
    true
    (ns >= 999 && ns <= 1000);
  Alcotest.(check bool) "books balance under carry" true
    (Ledger.balanced (Machine.ledger m));
  Alcotest.(check int) "ledger saw the same time" ns
    (Ledger.ns (Machine.ledger m) "tick")

(* --- profiler context: the function x account matrix --- *)

let test_matrix_attribution () =
  let l = Ledger.create () in
  Ledger.set_context l (Some "kernel");
  Ledger.book l "epc.fault" 100;
  Ledger.book l "epc.fault" 50;
  Ledger.set_context l (Some "helper");
  Ledger.book l "mee.copy" 30;
  Ledger.set_context l None;
  Ledger.book l "sgx.launch" 999;  (* no frame: stays out of the matrix *)
  let s = Ledger.snapshot l in
  Alcotest.(check (list string)) "matrix rows sorted" [ "helper"; "kernel" ]
    (List.map fst s.Ledger.matrix);
  Alcotest.(check (list (pair string int))) "kernel row"
    [ ("epc.fault", 150) ]
    (List.assoc "kernel" s.Ledger.matrix);
  let rendered = Ledger.render_matrix s in
  Alcotest.(check bool) "matrix renders frames" true (contains rendered "kernel")

(* --- serialisation --- *)

let test_snapshot_round_trip () =
  let clock = ref 0 in
  let l = Ledger.create ~now:(fun () -> !clock) () in
  clock := 1234;
  Ledger.set_context l (Some "main");
  Ledger.book l "sgx.transition.ecall" 1000;
  Ledger.book l "epc.fault" 200;
  Ledger.set_context l None;
  let s = Ledger.snapshot l in
  match Ledger.of_string (Ledger.to_string s) with
  | Error msg -> Alcotest.fail msg
  | Ok s' ->
      Alcotest.(check int) "elapsed survives" s.Ledger.elapsed_ns s'.Ledger.elapsed_ns;
      Alcotest.(check int) "booked survives" s.Ledger.booked_ns s'.Ledger.booked_ns;
      Alcotest.(check bool) "accounts survive" true
        (s.Ledger.accounts = s'.Ledger.accounts);
      Alcotest.(check bool) "matrix survives" true (s.Ledger.matrix = s'.Ledger.matrix)

let test_of_string_rejects_garbage () =
  (match Ledger.of_string "{\"schema\":\"nope/v9\"}" with
  | Ok _ -> Alcotest.fail "accepted wrong schema"
  | Error msg -> Alcotest.(check bool) "names the schema" true (contains msg "nope"));
  match Ledger.of_string "not json at all" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ()

(* --- differential attribution --- *)

let snap accounts =
  let booked = List.fold_left (fun a (_, e) -> a + e.Ledger.ns) 0 accounts in
  { Ledger.elapsed_ns = booked; booked_ns = booked; accounts; matrix = [] }

let test_diff_ranking () =
  let e ns events = { Ledger.ns; events } in
  let base = snap [ ("a", e 100 1); ("b", e 50 1); ("gone", e 10 1) ] in
  let cur = snap [ ("a", e 500 1); ("b", e 45 1); ("new", e 20 1) ] in
  let ds = Ledger.diff base cur in
  Alcotest.(check (list string)) "ranked by |delta|, union of accounts"
    [ "a"; "new"; "gone"; "b" ]
    (List.map (fun d -> d.Ledger.account) ds);
  let a = List.hd ds in
  Alcotest.(check int) "delta value" 400 a.Ledger.delta_ns;
  let txt = Ledger.render_diff ~base ~current:cur () in
  Alcotest.(check bool) "render names the top account" true (contains txt "a")

let test_epc_shrink_attribution () =
  (* The acceptance experiment in miniature: the same workload against a
     roomy and a starved EPC must see its slowdown attributed dominantly
     to the epc.* accounts by [diff]. *)
  let workload epc_pages =
    let m = Machine.create ~seed:"shrink" ~epc_bytes:(epc_pages * page) () in
    let e = Enclave.create m ~heap_bytes:0 ~code:"w" () in
    let addr = Enclave.alloc e (32 * page) in
    for _ = 1 to 8 do
      Enclave.touch e ~addr ~len:(32 * page)
    done;
    Alcotest.(check bool) "workload balances" true
      (Ledger.balanced (Machine.ledger m));
    Ledger.snapshot (Machine.ledger m)
  in
  let roomy = workload 256 and starved = workload 16 in
  let ds = Ledger.diff roomy starved in
  let pos = List.filter (fun d -> d.Ledger.delta_ns > 0) ds in
  let tot = List.fold_left (fun a d -> a + d.Ledger.delta_ns) 0 pos in
  let epc =
    List.fold_left
      (fun a d ->
        if String.length d.Ledger.account >= 4 && String.sub d.Ledger.account 0 4 = "epc."
        then a + d.Ledger.delta_ns
        else a)
      0 pos
  in
  Alcotest.(check bool) "slowdown exists" true (tot > 0);
  Alcotest.(check bool)
    (Printf.sprintf "epc.* dominates the delta (%d of %d ns)" epc tot)
    true
    (float_of_int epc /. float_of_int tot > 0.5)

(* --- engine parity through the runtime --- *)

let parity_wat =
  {|(module
      (import "wasi_snapshot_preview1" "fd_write"
        (func $fd_write (param i32 i32 i32 i32) (result i32)))
      (import "wasi_snapshot_preview1" "proc_exit"
        (func $proc_exit (param i32)))
      (memory (export "memory") 2)
      (data (i32.const 0) "ledger\0a")
      (func (export "_start")
        (local $i i32)
        (i32.store (i32.const 16) (i32.const 0))
        (i32.store (i32.const 20) (i32.const 7))
        (block $done
          (loop $l
            (br_if $done (i32.ge_u (local.get $i) (i32.const 8)))
            (drop (call $fd_write (i32.const 1) (i32.const 16) (i32.const 1)
                     (i32.const 24)))
            (local.set $i (i32.add (local.get $i) (i32.const 1)))
            (br $l)))
        (call $proc_exit (i32.const 0))))|}

let run_engine engine =
  let machine = Machine.create ~seed:"parity" ~epc_bytes:(64 * page) () in
  let config = { Twine.Runtime.default_config with engine } in
  let rt = Twine.Runtime.create ~config machine in
  Twine.Runtime.deploy rt (Twine_wasm.Wat.parse parity_wat);
  let r = Twine.Runtime.run rt in
  Alcotest.(check int) "guest exits cleanly" 0 r.Twine.Runtime.exit_code;
  Alcotest.(check bool) "run balances" true (Ledger.balanced (Machine.ledger machine));
  Ledger.accounts (Machine.ledger machine)

let test_engine_ledger_parity () =
  (* Identical workload, identical books — the only account allowed to
     differ is the AoT code-generation charge itself. *)
  let drop_aot = List.filter (fun (name, _) -> name <> "twine.aot") in
  let interp = run_engine Twine.Runtime.Interpreter in
  let aot = run_engine Twine.Runtime.Aot in
  Alcotest.(check bool) "AoT books its codegen" true
    (List.mem_assoc "twine.aot" aot);
  Alcotest.(check bool) "interp books no codegen" false
    (List.mem_assoc "twine.aot" interp);
  List.iter2
    (fun (ni, ei) (na, ea) ->
      Alcotest.(check string) "same account" ni na;
      Alcotest.(check int) (ni ^ " same ns") ei.Ledger.ns ea.Ledger.ns;
      Alcotest.(check int) (ni ^ " same events") ei.Ledger.events ea.Ledger.events)
    (drop_aot interp) (drop_aot aot)

let () =
  Alcotest.run "ledger"
    [
      ( "booking",
        [
          Alcotest.test_case "book + accounts" `Quick test_book_and_accounts;
          Alcotest.test_case "audit residue" `Quick test_audit_residue;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "machine",
        [
          Alcotest.test_case "conservation" `Quick test_machine_conservation;
          Alcotest.test_case "cycle carry" `Quick test_cycle_carry;
        ] );
      ( "matrix",
        [ Alcotest.test_case "context attribution" `Quick test_matrix_attribution ] );
      ( "serialisation",
        [
          Alcotest.test_case "round trip" `Quick test_snapshot_round_trip;
          Alcotest.test_case "rejects garbage" `Quick test_of_string_rejects_garbage;
        ] );
      ( "diff",
        [
          Alcotest.test_case "ranking" `Quick test_diff_ranking;
          Alcotest.test_case "EPC shrink attribution" `Quick test_epc_shrink_attribution;
        ] );
      ( "engines",
        [ Alcotest.test_case "interp = aot ledger" `Quick test_engine_ledger_parity ] );
    ]
