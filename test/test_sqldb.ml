(* Database engine tests: storage layers (record codec, pager+journal,
   B-tree) and the SQL surface (DDL, DML, queries, transactions). *)

open Twine_sqldb

let v_int n = Value.Int (Int64.of_int n)
let v_text s = Value.Text s

let value_t = Alcotest.testable (Fmt.of_to_string Value.to_string) Value.equal
let row_t = Alcotest.(list value_t)
let rows_t = Alcotest.(list row_t)

let mem_db () = Db.open_db ":memory:"

(* --- Value --- *)

let test_value_compare () =
  Alcotest.(check bool) "null < int" true (Value.compare Value.Null (v_int 0) < 0);
  Alcotest.(check bool) "int < text" true (Value.compare (v_int 999) (v_text "a") < 0);
  Alcotest.(check bool) "text < blob" true
    (Value.compare (v_text "zzz") (Value.Blob "\x00") < 0);
  Alcotest.(check bool) "int ~ real" true
    (Value.compare (v_int 2) (Value.Real 2.5) < 0);
  Alcotest.(check bool) "int = real" true (Value.equal (v_int 2) (Value.Real 2.0))

let test_value_arith () =
  Alcotest.check value_t "add" (v_int 5) (Value.add (v_int 2) (v_int 3));
  Alcotest.check value_t "mixed" (Value.Real 5.5) (Value.add (v_int 2) (Value.Real 3.5));
  Alcotest.check value_t "null propagates" Value.Null (Value.add Value.Null (v_int 1));
  Alcotest.check value_t "div by zero" Value.Null (Value.div (v_int 1) (v_int 0));
  Alcotest.check value_t "concat" (v_text "ab1") (Value.concat (v_text "ab") (v_int 1))

let test_value_like () =
  Alcotest.(check bool) "prefix" true (Value.like ~pattern:"he%" "hello");
  Alcotest.(check bool) "underscore" true (Value.like ~pattern:"h_llo" "hello");
  Alcotest.(check bool) "case insensitive" true (Value.like ~pattern:"HE%" "hello");
  Alcotest.(check bool) "no match" false (Value.like ~pattern:"x%" "hello");
  Alcotest.(check bool) "inner %" true (Value.like ~pattern:"%ell%" "hello")

let prop_record_roundtrip =
  let gen_value =
    QCheck.Gen.(
      oneof
        [ return Value.Null;
          map (fun i -> Value.Int (Int64.of_int i)) int;
          map (fun f -> Value.Real f) (float_bound_inclusive 1e6);
          map (fun s -> Value.Text s) (string_size (int_range 0 50));
          map (fun s -> Value.Blob s) (string_size (int_range 0 50)) ])
  in
  QCheck.Test.make ~name:"record roundtrip" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 10) gen_value))
    (fun values -> Record.decode (Record.encode values) = values)

(* --- Pager --- *)

let test_pager_txn_commit () =
  let vfs = Svfs.memory () in
  let p = Pager.create_or_open vfs "db" in
  Pager.begin_txn p;
  let pg = Pager.alloc p in
  let b = Pager.modify p pg in
  Bytes.blit_string "hello" 0 b 0 5;
  Pager.commit p;
  Pager.close p;
  let p2 = Pager.create_or_open vfs "db" in
  Alcotest.(check string) "committed" "hello"
    (Bytes.sub_string (Pager.read_page p2 pg) 0 5);
  Pager.close p2

let test_pager_rollback () =
  let vfs = Svfs.memory () in
  let p = Pager.create_or_open vfs "db" in
  Pager.begin_txn p;
  let pg = Pager.alloc p in
  let b = Pager.modify p pg in
  Bytes.blit_string "first" 0 b 0 5;
  Pager.commit p;
  Pager.begin_txn p;
  let b = Pager.modify p pg in
  Bytes.blit_string "SPOILED" 0 b 0 7;
  Pager.rollback p;
  Alcotest.(check string) "rolled back" "first"
    (Bytes.sub_string (Pager.read_page p pg) 0 5);
  Pager.close p

let test_pager_crash_recovery () =
  (* simulate a crash: journal exists, some dirty pages were written *)
  let vfs = Svfs.memory () in
  let p = Pager.create_or_open vfs "db" in
  Pager.begin_txn p;
  let pg = Pager.alloc p in
  let b = Pager.modify p pg in
  Bytes.blit_string "stable" 0 b 0 6;
  Pager.commit p;
  (* start a txn, modify, write the dirty page out by hand, then "crash"
     without committing (journal remains) *)
  Pager.begin_txn p;
  let b = Pager.modify p pg in
  Bytes.blit_string "BROKEN" 0 b 0 6;
  (* force the page to storage as a mid-transaction spill would *)
  let file = vfs.Svfs.v_open "db" in
  file.Svfs.v_write ~pos:(pg * Pager.page_size) "BROKEN";
  (* do NOT commit/rollback; reopen — recovery must restore "stable" *)
  let p2 = Pager.create_or_open vfs "db" in
  Alcotest.(check string) "recovered" "stable"
    (Bytes.sub_string (Pager.read_page p2 pg) 0 6);
  Pager.close p2

let test_pager_freelist_reuse () =
  let vfs = Svfs.memory () in
  let p = Pager.create_or_open vfs "db" in
  Pager.begin_txn p;
  let a = Pager.alloc p in
  let _b = Pager.alloc p in
  Pager.free p a;
  let c = Pager.alloc p in
  Alcotest.(check int) "freed page reused" a c;
  Pager.commit p;
  Pager.close p

(* --- Btree --- *)

let with_btree kind f =
  let vfs = Svfs.memory () in
  let p = Pager.create_or_open vfs "db" in
  Pager.begin_txn p;
  let root = Btree.create p kind in
  f p root;
  Pager.commit p;
  Pager.close p

let test_btree_insert_lookup () =
  with_btree Btree.Table (fun p root ->
      for i = 1 to 500 do
        Btree.insert_table p ~root ~rowid:(Int64.of_int i)
          (Printf.sprintf "payload-%d" i)
      done;
      Alcotest.(check (option string)) "mid" (Some "payload-250")
        (Btree.lookup_table p ~root 250L);
      Alcotest.(check (option string)) "first" (Some "payload-1")
        (Btree.lookup_table p ~root 1L);
      Alcotest.(check (option string)) "missing" None (Btree.lookup_table p ~root 999L);
      Alcotest.(check int) "count" 500 (Btree.count_table p ~root);
      Alcotest.(check (option int64)) "max" (Some 500L) (Btree.max_rowid p ~root))

let test_btree_random_order_inserts () =
  with_btree Btree.Table (fun p root ->
      let drbg = Twine_crypto.Drbg.create ~seed:"btree" () in
      let n = 1000 in
      let perm = Array.init n (fun i -> i + 1) in
      for i = n - 1 downto 1 do
        let j = Twine_crypto.Drbg.int_below drbg (i + 1) in
        let tmp = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- tmp
      done;
      Array.iter
        (fun i ->
          Btree.insert_table p ~root ~rowid:(Int64.of_int i) (string_of_int (i * i)))
        perm;
      (* in-order iteration yields sorted rowids *)
      let seen = ref [] in
      Btree.iter_table p ~root (fun r _ ->
          seen := r :: !seen;
          true);
      let sorted = List.init n (fun i -> Int64.of_int (i + 1)) in
      Alcotest.(check (list int64)) "sorted iteration" sorted (List.rev !seen))

let test_btree_range_iteration () =
  with_btree Btree.Table (fun p root ->
      for i = 1 to 300 do
        Btree.insert_table p ~root ~rowid:(Int64.of_int i) "x"
      done;
      let seen = ref [] in
      Btree.iter_table p ~root ~min:100L ~max:110L (fun r _ ->
          seen := r :: !seen;
          true);
      Alcotest.(check (list int64)) "range" (List.init 11 (fun i -> Int64.of_int (100 + i)))
        (List.rev !seen);
      (* early stop *)
      let count = ref 0 in
      Btree.iter_table p ~root (fun _ _ ->
          incr count;
          !count < 5);
      Alcotest.(check int) "stopped" 5 !count)

let test_btree_replace_and_delete () =
  with_btree Btree.Table (fun p root ->
      Btree.insert_table p ~root ~rowid:7L "old";
      Btree.insert_table p ~root ~rowid:7L "new";
      Alcotest.(check (option string)) "replaced" (Some "new")
        (Btree.lookup_table p ~root 7L);
      Alcotest.(check int) "no dup" 1 (Btree.count_table p ~root);
      Alcotest.(check bool) "delete" true (Btree.delete_table p ~root 7L);
      Alcotest.(check bool) "gone" true (Btree.lookup_table p ~root 7L = None);
      Alcotest.(check bool) "delete missing" false (Btree.delete_table p ~root 7L))

let test_btree_large_payloads () =
  with_btree Btree.Table (fun p root ->
      (* 1 KiB payloads force splits after ~4 cells *)
      for i = 1 to 200 do
        Btree.insert_table p ~root ~rowid:(Int64.of_int i) (String.make 1024 (Char.chr (i land 0xff)))
      done;
      Alcotest.(check int) "count" 200 (Btree.count_table p ~root);
      Alcotest.(check (option string)) "content" (Some (String.make 1024 (Char.chr 77)))
        (Btree.lookup_table p ~root 77L);
      Alcotest.(check bool) "oversize rejected" true
        (try
           Btree.insert_table p ~root ~rowid:999L (String.make 8000 'x');
           false
         with Btree.Too_large _ -> true))

let test_btree_index_ops () =
  with_btree Btree.Index (fun p root ->
      let key vals rowid =
        Record.encode (vals @ [ Value.Int (Int64.of_int rowid) ])
      in
      for i = 1 to 300 do
        Btree.insert_index p ~root (key [ v_text (Printf.sprintf "k%04d" (301 - i)) ] i)
      done;
      (* iterate in key order *)
      let first = ref None in
      Btree.iter_index p ~root (fun k ->
          first := Some k;
          false);
      Alcotest.(check (option (list value_t))) "smallest key first"
        (Some [ v_text "k0001"; v_int 300 ])
        (Option.map Record.decode !first);
      (* seek *)
      let hits = ref [] in
      Btree.iter_index p ~root ~start:(Record.encode [ v_text "k0299" ]) (fun k ->
          hits := Record.decode k :: !hits;
          true);
      Alcotest.(check int) "seek tail" 2 (List.length !hits);
      (* delete *)
      Alcotest.(check bool) "delete" true
        (Btree.delete_index p ~root (key [ v_text "k0001" ] 300)))

(* --- SQL layer --- *)

let test_create_insert_select () =
  let db = mem_db () in
  ignore (Db.exec db "CREATE TABLE t(a INTEGER PRIMARY KEY, b TEXT, c REAL)");
  ignore (Db.exec db "INSERT INTO t VALUES (1, 'one', 1.5), (2, 'two', 2.5)");
  ignore (Db.exec db "INSERT INTO t(b, c) VALUES ('three', 3.5)");
  let r = Db.exec db "SELECT a, b, c FROM t ORDER BY a" in
  Alcotest.(check (list string)) "columns" [ "a"; "b"; "c" ] r.Db.columns;
  Alcotest.check rows_t "rows"
    [ [ v_int 1; v_text "one"; Value.Real 1.5 ];
      [ v_int 2; v_text "two"; Value.Real 2.5 ];
      [ v_int 3; v_text "three"; Value.Real 3.5 ] ]
    r.Db.rows;
  Db.close db

let test_where_and_expressions () =
  let db = mem_db () in
  ignore (Db.exec db "CREATE TABLE t(a INTEGER PRIMARY KEY, b INTEGER)");
  ignore
    (Db.exec db
       "INSERT INTO t VALUES (1,10),(2,20),(3,30),(4,40),(5,NULL)");
  Alcotest.check rows_t "comparison" [ [ v_int 3 ]; [ v_int 4 ] ]
    (Db.query db "SELECT a FROM t WHERE b > 25 ORDER BY a");
  Alcotest.check rows_t "arith in where" [ [ v_int 2 ] ]
    (Db.query db "SELECT a FROM t WHERE b * 2 = 40");
  Alcotest.check rows_t "is null" [ [ v_int 5 ] ]
    (Db.query db "SELECT a FROM t WHERE b IS NULL");
  Alcotest.check rows_t "is not null count" [ [ v_int 4 ] ]
    (Db.query db "SELECT count(*) FROM t WHERE b IS NOT NULL");
  Alcotest.check rows_t "between" [ [ v_int 2 ]; [ v_int 3 ] ]
    (Db.query db "SELECT a FROM t WHERE b BETWEEN 20 AND 30 ORDER BY a");
  Alcotest.check rows_t "in list" [ [ v_int 1 ]; [ v_int 3 ] ]
    (Db.query db "SELECT a FROM t WHERE a IN (1, 3) ORDER BY a");
  Alcotest.check rows_t "and/or" [ [ v_int 1 ]; [ v_int 4 ] ]
    (Db.query db "SELECT a FROM t WHERE b = 10 OR (b > 35 AND a < 5) ORDER BY a");
  Db.close db

let test_like_and_functions () =
  let db = mem_db () in
  ignore (Db.exec db "CREATE TABLE n(name TEXT)");
  ignore (Db.exec db "INSERT INTO n VALUES ('alpha'),('beta'),('alabama')");
  Alcotest.check rows_t "like" [ [ v_text "alpha" ]; [ v_text "alabama" ] ]
    (Db.query db "SELECT name FROM n WHERE name LIKE 'al%'");
  Alcotest.check rows_t "length" [ [ v_int 5 ] ]
    (Db.query db "SELECT length(name) FROM n WHERE name = 'alpha'");
  Alcotest.check rows_t "upper/substr" [ [ v_text "ALP" ] ]
    (Db.query db "SELECT upper(substr(name, 1, 3)) FROM n WHERE name = 'alpha'");
  Alcotest.check rows_t "case" [ [ v_text "long" ] ]
    (Db.query db
       "SELECT CASE WHEN length(name) > 5 THEN 'long' ELSE 'short' END FROM n WHERE name='alabama'");
  Db.close db

let test_aggregates_group_by () =
  let db = mem_db () in
  ignore (Db.exec db "CREATE TABLE s(dept TEXT, salary INTEGER)");
  ignore
    (Db.exec db
       "INSERT INTO s VALUES ('eng', 100), ('eng', 120), ('ops', 80), ('ops', 90), ('hr', 70)");
  Alcotest.check rows_t "count" [ [ v_int 5 ] ] (Db.query db "SELECT count(*) FROM s");
  Alcotest.check rows_t "sum/avg/min/max"
    [ [ v_int 460; Value.Real 92.; v_int 70; v_int 120 ] ]
    (Db.query db "SELECT sum(salary), avg(salary), min(salary), max(salary) FROM s");
  Alcotest.check rows_t "group by"
    [ [ v_text "eng"; v_int 220 ]; [ v_text "hr"; v_int 70 ]; [ v_text "ops"; v_int 170 ] ]
    (Db.query db "SELECT dept, sum(salary) FROM s GROUP BY dept ORDER BY dept");
  Alcotest.check rows_t "group by + where"
    [ [ v_text "eng"; v_int 2 ] ]
    (Db.query db
       "SELECT dept, count(*) FROM s WHERE salary >= 90 GROUP BY dept ORDER BY count(*) DESC LIMIT 1");
  Db.close db

let test_order_limit_distinct () =
  let db = mem_db () in
  ignore (Db.exec db "CREATE TABLE t(x INTEGER)");
  ignore (Db.exec db "INSERT INTO t VALUES (3),(1),(2),(3),(1)");
  Alcotest.check rows_t "order desc"
    [ [ v_int 3 ]; [ v_int 3 ]; [ v_int 2 ]; [ v_int 1 ]; [ v_int 1 ] ]
    (Db.query db "SELECT x FROM t ORDER BY x DESC");
  Alcotest.check rows_t "distinct" [ [ v_int 1 ]; [ v_int 2 ]; [ v_int 3 ] ]
    (Db.query db "SELECT DISTINCT x FROM t ORDER BY x");
  Alcotest.check rows_t "limit offset" [ [ v_int 2 ]; [ v_int 3 ] ]
    (Db.query db "SELECT DISTINCT x FROM t ORDER BY x LIMIT 2 OFFSET 1");
  Db.close db

let test_update_delete () =
  let db = mem_db () in
  ignore (Db.exec db "CREATE TABLE t(a INTEGER PRIMARY KEY, b INTEGER)");
  ignore (Db.exec db "INSERT INTO t VALUES (1,1),(2,2),(3,3)");
  let r = Db.exec db "UPDATE t SET b = b * 10 WHERE a >= 2" in
  Alcotest.(check int) "updated" 2 r.Db.affected;
  Alcotest.check rows_t "after update" [ [ v_int 1 ]; [ v_int 20 ]; [ v_int 30 ] ]
    (Db.query db "SELECT b FROM t ORDER BY a");
  let r = Db.exec db "DELETE FROM t WHERE b = 20" in
  Alcotest.(check int) "deleted" 1 r.Db.affected;
  Alcotest.check rows_t "after delete" [ [ v_int 1 ]; [ v_int 3 ] ]
    (Db.query db "SELECT a FROM t ORDER BY a");
  Db.close db

let test_rowid_plan_and_pk () =
  let db = mem_db () in
  ignore (Db.exec db "CREATE TABLE t(id INTEGER PRIMARY KEY, v TEXT)");
  ignore (Db.exec db "BEGIN");
  for i = 1 to 1000 do
    ignore (Db.exec db (Printf.sprintf "INSERT INTO t VALUES (%d, 'v%d')" i i))
  done;
  ignore (Db.exec db "COMMIT");
  Alcotest.check rows_t "pk point query" [ [ v_text "v500" ] ]
    (Db.query db "SELECT v FROM t WHERE id = 500");
  Alcotest.check rows_t "pk range" [ [ v_int 11 ] ]
    (Db.query db "SELECT count(*) FROM t WHERE id BETWEEN 100 AND 110");
  Alcotest.check rows_t "rowid alias" [ [ v_text "v7" ] ]
    (Db.query db "SELECT v FROM t WHERE rowid = 7");
  (* duplicate pk rejected *)
  Alcotest.(check bool) "dup pk" true
    (try
       ignore (Db.exec db "INSERT INTO t VALUES (500, 'dup')");
       false
     with Db.Sql_error _ -> true);
  Db.close db

let test_secondary_index () =
  let db = mem_db () in
  ignore (Db.exec db "CREATE TABLE t(id INTEGER PRIMARY KEY, name TEXT, age INTEGER)");
  ignore (Db.exec db "BEGIN");
  for i = 1 to 500 do
    ignore
      (Db.exec db
         (Printf.sprintf "INSERT INTO t VALUES (%d, 'user%03d', %d)" i (i mod 100) (i mod 50)))
  done;
  ignore (Db.exec db "COMMIT");
  ignore (Db.exec db "CREATE INDEX t_name ON t(name)");
  Alcotest.check rows_t "index eq lookup" [ [ v_int 5 ] ]
    (Db.query db "SELECT count(*) FROM t WHERE name = 'user042'");
  (* index must stay consistent through update/delete *)
  ignore (Db.exec db "UPDATE t SET name = 'renamed' WHERE id = 42");
  Alcotest.check rows_t "after update" [ [ v_int 4 ] ]
    (Db.query db "SELECT count(*) FROM t WHERE name = 'user042'");
  Alcotest.check rows_t "renamed found" [ [ v_int 1 ] ]
    (Db.query db "SELECT count(*) FROM t WHERE name = 'renamed'");
  ignore (Db.exec db "DELETE FROM t WHERE name = 'renamed'");
  Alcotest.check rows_t "after delete" [ [ v_int 0 ] ]
    (Db.query db "SELECT count(*) FROM t WHERE name = 'renamed'");
  Db.close db

let test_unique_index () =
  let db = mem_db () in
  ignore (Db.exec db "CREATE TABLE u(id INTEGER PRIMARY KEY, email TEXT)");
  ignore (Db.exec db "CREATE UNIQUE INDEX u_email ON u(email)");
  ignore (Db.exec db "INSERT INTO u VALUES (1, 'a@x.com')");
  Alcotest.(check bool) "duplicate rejected" true
    (try
       ignore (Db.exec db "INSERT INTO u VALUES (2, 'a@x.com')");
       false
     with Db.Sql_error _ -> true);
  ignore (Db.exec db "INSERT INTO u VALUES (3, 'b@x.com')");
  Alcotest.check rows_t "two rows" [ [ v_int 2 ] ] (Db.query db "SELECT count(*) FROM u");
  Db.close db

let test_join () =
  let db = mem_db () in
  ignore (Db.exec db "CREATE TABLE dept(id INTEGER PRIMARY KEY, dname TEXT)");
  ignore (Db.exec db "CREATE TABLE emp(id INTEGER PRIMARY KEY, ename TEXT, dept_id INTEGER)");
  ignore (Db.exec db "INSERT INTO dept VALUES (1,'eng'),(2,'ops')");
  ignore
    (Db.exec db "INSERT INTO emp VALUES (1,'ada',1),(2,'bob',2),(3,'cyd',1)");
  Alcotest.check rows_t "join"
    [ [ v_text "ada"; v_text "eng" ]; [ v_text "bob"; v_text "ops" ];
      [ v_text "cyd"; v_text "eng" ] ]
    (Db.query db
       "SELECT e.ename, d.dname FROM emp e JOIN dept d ON e.dept_id = d.id ORDER BY e.id");
  Alcotest.check rows_t "join + where + group"
    [ [ v_text "eng"; v_int 2 ] ]
    (Db.query db
       "SELECT d.dname, count(*) FROM emp e JOIN dept d ON e.dept_id = d.id GROUP BY d.dname ORDER BY count(*) DESC LIMIT 1");
  Db.close db

let test_transactions () =
  let db = mem_db () in
  ignore (Db.exec db "CREATE TABLE t(a INTEGER)");
  ignore (Db.exec db "BEGIN");
  ignore (Db.exec db "INSERT INTO t VALUES (1)");
  ignore (Db.exec db "INSERT INTO t VALUES (2)");
  ignore (Db.exec db "ROLLBACK");
  Alcotest.check rows_t "rolled back" [ [ v_int 0 ] ] (Db.query db "SELECT count(*) FROM t");
  ignore (Db.exec db "BEGIN");
  ignore (Db.exec db "INSERT INTO t VALUES (3)");
  ignore (Db.exec db "COMMIT");
  Alcotest.check rows_t "committed" [ [ v_int 1 ] ] (Db.query db "SELECT count(*) FROM t");
  Db.close db

let test_persistence () =
  let vfs = Svfs.memory () in
  let db = Db.open_db ~vfs "test.db" in
  ignore (Db.exec db "CREATE TABLE t(a INTEGER PRIMARY KEY, b TEXT)");
  ignore (Db.exec db "CREATE INDEX t_b ON t(b)");
  ignore (Db.exec db "INSERT INTO t VALUES (1,'x'),(2,'y')");
  Db.close db;
  let db2 = Db.open_db ~vfs "test.db" in
  Alcotest.check rows_t "schema + data survive" [ [ v_int 1; v_text "x" ]; [ v_int 2; v_text "y" ] ]
    (Db.query db2 "SELECT a, b FROM t ORDER BY a");
  Alcotest.check rows_t "index survives" [ [ v_int 1 ] ]
    (Db.query db2 "SELECT count(*) FROM t WHERE b = 'y'");
  Db.close db2

let test_drop_and_vacuum () =
  let db = mem_db () in
  ignore (Db.exec db "CREATE TABLE t(a INTEGER)");
  ignore (Db.exec db "CREATE TABLE keepme(a INTEGER)");
  ignore (Db.exec db "INSERT INTO keepme VALUES (42)");
  ignore (Db.exec db "DROP TABLE t");
  Alcotest.(check bool) "dropped" true
    (try
       ignore (Db.query db "SELECT * FROM t");
       false
     with Db.Sql_error _ -> true);
  ignore (Db.exec db "DROP TABLE IF EXISTS t");
  ignore (Db.exec db "VACUUM");
  Alcotest.check rows_t "data survives vacuum" [ [ v_int 42 ] ]
    (Db.query db "SELECT a FROM keepme");
  Db.close db

let test_analyze () =
  let db = mem_db () in
  ignore (Db.exec db "CREATE TABLE t(a INTEGER PRIMARY KEY, b TEXT)");
  ignore (Db.exec db "CREATE INDEX t_b ON t(b)");
  ignore (Db.exec db "INSERT INTO t VALUES (1,'x'),(2,'y'),(3,'z')");
  ignore (Db.exec db "ANALYZE");
  Alcotest.check rows_t "table stat" [ [ v_int 3 ] ]
    (Db.query db "SELECT stat FROM stat1 WHERE tbl = 't' AND idx IS NULL");
  Alcotest.check rows_t "index stat" [ [ v_int 3 ] ]
    (Db.query db "SELECT stat FROM stat1 WHERE idx = 't_b'");
  Db.close db

let test_pragma_cache_size () =
  let db = mem_db () in
  ignore (Db.exec db "PRAGMA cache_size = 64");
  ignore (Db.exec db "CREATE TABLE t(a INTEGER)");
  ignore (Db.exec db "INSERT INTO t VALUES (1)");
  Alcotest.check rows_t "still works" [ [ v_int 1 ] ] (Db.query db "SELECT a FROM t");
  let r = Db.exec db "PRAGMA page_size" in
  Alcotest.check rows_t "page size" [ [ v_int 4096 ] ] r.Db.rows;
  Db.close db

let test_not_null_and_default () =
  let db = mem_db () in
  ignore (Db.exec db "CREATE TABLE t(a INTEGER NOT NULL, b TEXT DEFAULT 'dflt')");
  Alcotest.(check bool) "not null rejected" true
    (try
       ignore (Db.exec db "INSERT INTO t(a) VALUES (NULL)");
       false
     with Db.Sql_error _ -> true);
  ignore (Db.exec db "INSERT INTO t(a) VALUES (1)");
  Alcotest.check rows_t "default applied" [ [ v_text "dflt" ] ]
    (Db.query db "SELECT b FROM t");
  Db.close db

let test_sql_errors () =
  let db = mem_db () in
  List.iter
    (fun sql ->
      Alcotest.(check bool) ("rejects: " ^ sql) true
        (try
           ignore (Db.exec db sql);
           false
         with Db.Sql_error _ | Parser.Error _ -> true))
    [ "SELECT * FROM missing";
      "FROBNICATE";
      "INSERT INTO missing VALUES (1)";
      "SELECT nosuchcol FROM missing";
      "CREATE TABLE" ];
  Db.close db

let test_random_functions () =
  let db = mem_db () in
  ignore (Db.exec db "CREATE TABLE t(r INTEGER, b BLOB)");
  ignore (Db.exec db "INSERT INTO t VALUES (random(), randomblob(16))");
  (match Db.query db "SELECT length(b) FROM t" with
  | [ [ v ] ] -> Alcotest.check value_t "blob length" (v_int 16) v
  | _ -> Alcotest.fail "no rows");
  Db.close db

let test_multi_statement_exec () =
  let db = mem_db () in
  let r =
    Db.exec db
      "CREATE TABLE t(a INTEGER); INSERT INTO t VALUES (1); INSERT INTO t VALUES (2); SELECT sum(a) FROM t"
  in
  Alcotest.check rows_t "last result" [ [ v_int 3 ] ] r.Db.rows;
  Db.close db

(* --- EXPLAIN / operator observability --- *)

(* Every statement kind accepts the EXPLAIN [ANALYZE] prefix, and the
   wrapped AST is exactly the bare statement's AST. *)
let test_explain_roundtrip () =
  let kinds =
    [ "SELECT a FROM t WHERE a = 1";
      "INSERT INTO t VALUES (1)";
      "UPDATE t SET a = 2 WHERE a = 1";
      "DELETE FROM t WHERE a = 1";
      "CREATE TABLE u (x INTEGER)";
      "CREATE INDEX i ON t (a)";
      "DROP TABLE u";
      "DROP INDEX i";
      "BEGIN";
      "COMMIT";
      "ROLLBACK";
      "PRAGMA cache_size = 64";
      "ANALYZE";
      "VACUUM" ]
  in
  List.iter
    (fun sql ->
      let bare =
        match Parser.parse sql with
        | [ s ] -> s
        | _ -> Alcotest.failf "multi-parse: %s" sql
      in
      (match Parser.parse ("EXPLAIN " ^ sql) with
      | [ Sql_ast.Explain { ex_analyze = false; ex_stmt } ] ->
          Alcotest.(check bool) ("explain wraps: " ^ sql) true (ex_stmt = bare)
      | _ -> Alcotest.failf "EXPLAIN did not wrap: %s" sql);
      match Parser.parse ("EXPLAIN ANALYZE " ^ sql) with
      | [ Sql_ast.Explain { ex_analyze = true; ex_stmt } ] ->
          Alcotest.(check bool)
            ("explain analyze wraps: " ^ sql)
            true (ex_stmt = bare)
      | _ -> Alcotest.failf "EXPLAIN ANALYZE did not wrap: %s" sql)
    kinds;
  (* nested EXPLAIN parses but is rejected at execution *)
  let db = mem_db () in
  Alcotest.(check bool) "nested explain rejected" true
    (try
       ignore (Db.exec db "EXPLAIN EXPLAIN SELECT 1");
       false
     with Db.Sql_error _ -> true);
  Db.close db

let plan_lines r =
  Alcotest.(check (list string)) "plan column" [ "plan" ] r.Db.columns;
  List.map
    (function [ Value.Text l ] -> l | _ -> Alcotest.fail "non-text plan row")
    r.Db.rows

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_explain_output () =
  let db = mem_db () in
  ignore (Db.exec db "CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER)");
  ignore (Db.exec db "INSERT INTO t VALUES (1,10),(2,20),(3,30)");
  (* EXPLAIN: plan tree only, no execution, estimates unknown pre-ANALYZE *)
  let plain = plan_lines (Db.exec db "EXPLAIN SELECT b FROM t WHERE a = 2") in
  Alcotest.(check bool) "project line" true
    (List.exists (contains ~sub:"project(b)") plain);
  Alcotest.(check bool) "rowid access path" true
    (List.exists (contains ~sub:"rowid [2..2]") plain);
  Alcotest.(check bool) "no estimate before analyze" true
    (List.for_all (contains ~sub:"est=-") plain);
  (* EXPLAIN ANALYZE: actuals appear *)
  let an = plan_lines (Db.exec db "EXPLAIN ANALYZE SELECT b FROM t WHERE a >= 2") in
  Alcotest.(check bool) "actual rows out" true
    (List.exists (contains ~sub:"out=2") an);
  Alcotest.(check bool) "work attributed" true
    (List.exists (contains ~sub:"work=") an);
  (* ANALYZE, then estimates show up next to actuals *)
  ignore (Db.exec db "ANALYZE");
  let an2 = plan_lines (Db.exec db "EXPLAIN ANALYZE SELECT b FROM t WHERE a >= 2") in
  Alcotest.(check bool) "estimate after analyze" true
    (List.exists (contains ~sub:"est=2") an2);
  (* cycles column appears once a ns-per-work hint is installed *)
  Db.set_ns_per_work db 10.;
  let an3 = plan_lines (Db.exec db "EXPLAIN ANALYZE SELECT b FROM t") in
  Alcotest.(check bool) "cycles rendered" true
    (List.exists (contains ~sub:"cycles=") an3);
  Db.close db

(* The zero-residue conservation law: for every statement kind, booked
   work = sum of operator self-work + profiling overhead, exactly. *)
let test_operator_conservation () =
  let db = mem_db () in
  List.iter
    (fun sql -> ignore (Db.exec db sql))
    [ "CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER, c TEXT)";
      "CREATE INDEX t_b ON t (b)";
      "INSERT INTO t VALUES (1, 5, 'x'), (2, 5, 'y'), (3, 7, 'z'), (4, 8, 'w')";
      "SELECT * FROM t WHERE a >= 2 AND c <> 'q' ORDER BY b LIMIT 2";
      "SELECT b, count(*) FROM t GROUP BY b";
      "SELECT DISTINCT b FROM t";
      "SELECT t1.a, t2.b FROM t t1 JOIN t t2 ON t1.a = t2.a";
      "UPDATE t SET c = 'u' WHERE b = 5";
      "DELETE FROM t WHERE a = 4";
      "ANALYZE";
      "SELECT count(*), sum(b) FROM t WHERE a >= 1 AND a < 3";
      "VACUUM";
      "EXPLAIN SELECT * FROM t" ];
  let profiles = Db.profiles db in
  Alcotest.(check bool) "profiles recorded" true (List.length profiles >= 13);
  List.iter
    (fun (p : Db.profile) ->
      let ops =
        List.fold_left (fun a (o : Db.opstat) -> a + o.Db.os_work) 0 p.Db.pr_ops
      in
      Alcotest.(check int)
        ("conservation: " ^ p.Db.pr_stmt)
        p.Db.pr_total_work
        (ops + p.Db.pr_overhead_work))
    profiles;
  Db.close db

(* Satellite: the sqldb.plan counters make silent access-path flips
   (index -> full scan) visible. *)
let test_plan_counters () =
  let obs = Twine_obs.Obs.create () in
  let db = Db.open_db ~obs ":memory:" in
  ignore (Db.exec db "CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER)");
  ignore (Db.exec db "CREATE INDEX t_b ON t (b)");
  ignore (Db.exec db "INSERT INTO t VALUES (1,10),(2,20),(3,30)");
  let v k = Twine_obs.Obs.value obs ("sqldb.plan." ^ k) in
  let base_full = v "full_scan" in
  ignore (Db.query db "SELECT * FROM t WHERE a = 2");
  Alcotest.(check int) "rowid path" 1 (v "rowid_range");
  ignore (Db.query db "SELECT * FROM t WHERE b = 20");
  Alcotest.(check int) "index path" 1 (v "index_range");
  ignore (Db.query db "SELECT * FROM t WHERE b + 1 = 21");
  Alcotest.(check int) "fallback counted" 1 (v "fallback");
  Alcotest.(check int) "fallback is a full scan" (base_full + 1) (v "full_scan");
  Db.close db

(* --- ANALYZE statistics catalog (satellite 3) --- *)

let test_analyze_stat_tables () =
  let db = mem_db () in
  ignore (Db.exec db "CREATE TABLE t (a INTEGER PRIMARY KEY, b INTEGER, c TEXT)");
  ignore
    (Db.exec db
       "INSERT INTO t VALUES (1, 5, 'x'), (2, 5, NULL), (3, 7, 'y'), (4, 8, NULL)");
  ignore (Db.exec db "ANALYZE");
  (* per-column distinct / null counts *)
  Alcotest.check rows_t "ndistinct b" [ [ v_int 3; v_int 0 ] ]
    (Db.query db "SELECT ndistinct, nnull FROM stat_col WHERE tbl = 't' AND col = 'b'");
  Alcotest.check rows_t "nnull c" [ [ v_int 2; v_int 2 ] ]
    (Db.query db "SELECT ndistinct, nnull FROM stat_col WHERE tbl = 't' AND col = 'c'");
  (* histogram invariants: monotone bounds, bucket counts sum to the
     non-null row count *)
  let hist col =
    List.map
      (function
        | [ lo; hi; Value.Int n ] -> (lo, hi, Int64.to_int n)
        | _ -> Alcotest.fail "bad hist row")
      (Db.query db
         (Printf.sprintf
            "SELECT lo, hi, cnt FROM stat_hist WHERE tbl = 't' AND col = '%s' ORDER BY bucket"
            col))
  in
  let check_hist col non_null =
    let h = hist col in
    Alcotest.(check bool) (col ^ ": non-empty") true (h <> []);
    Alcotest.(check int)
      (col ^ ": counts sum to rows")
      non_null
      (List.fold_left (fun a (_, _, n) -> a + n) 0 h);
    let rec mono = function
      | (lo, hi, _) :: ((lo2, _, _) :: _ as rest) ->
          Value.compare lo hi <= 0 && Value.compare hi lo2 <= 0 && mono rest
      | [ (lo, hi, _) ] -> Value.compare lo hi <= 0
      | [] -> true
    in
    Alcotest.(check bool) (col ^ ": monotone bounds") true (mono h)
  in
  check_hist "b" 4;
  check_hist "c" 2;
  (* DELETE then re-ANALYZE refreshes the stat tables in place *)
  ignore (Db.exec db "DELETE FROM t WHERE a >= 3");
  ignore (Db.exec db "ANALYZE");
  Alcotest.check rows_t "row count after delete" [ [ v_int 2 ] ]
    (Db.query db "SELECT stat FROM stat1 WHERE tbl = 't' AND idx IS NULL");
  check_hist "b" 2;
  (* VACUUM preserves the catalog; ANALYZE after INSERT sees new rows;
     stat tables never appear in their own statistics *)
  ignore (Db.exec db "VACUUM");
  ignore (Db.exec db "INSERT INTO t VALUES (9, 9, 'q')");
  ignore (Db.exec db "ANALYZE");
  Alcotest.check rows_t "row count after vacuum+insert" [ [ v_int 3 ] ]
    (Db.query db "SELECT stat FROM stat1 WHERE tbl = 't' AND idx IS NULL");
  Alcotest.check rows_t "stat tables not self-analyzed" []
    (Db.query db "SELECT stat FROM stat1 WHERE tbl = 'stat1'");
  (* ANALYZE-then-EXPLAIN: the estimate reflects the fresh statistics *)
  let lines = plan_lines (Db.exec db "EXPLAIN SELECT * FROM t WHERE a >= 1") in
  Alcotest.(check bool) "estimate from stats" true
    (List.exists (contains ~sub:"est=3") lines);
  Db.close db

(* --- query-stats registry --- *)

let test_fingerprint () =
  let fp = Sqlstat.fingerprint in
  (* literals collapse, so parameterized statements share a key *)
  Alcotest.(check string) "int literal"
    (fp "SELECT v FROM kv WHERE k = 1")
    (fp "SELECT v FROM kv WHERE k = 999");
  Alcotest.(check string) "string and float literals"
    (fp "INSERT INTO t VALUES ('abc', 1.5)")
    (fp "INSERT INTO t VALUES ('zzz', 99.0)");
  (* identifier case folds; keyword case folds *)
  Alcotest.(check string) "identifier case"
    (fp "select V from KV where K = 3")
    (fp "SELECT v FROM kv WHERE k = 4");
  (* whitespace normalizes *)
  Alcotest.(check string) "whitespace"
    (fp "SELECT  a   FROM t")
    (fp "SELECT a FROM t");
  (* different shapes stay distinct *)
  Alcotest.(check bool) "shapes distinct" true
    (fp "SELECT a FROM t" <> fp "SELECT b FROM t");
  Alcotest.(check string) "rendered form" "SELECT v FROM kv WHERE k = ?"
    (fp "SELECT v FROM kv WHERE k = 42")

let test_sqlstat_registry () =
  let reg = Sqlstat.create () in
  let record ?(label = "point") fp lat =
    Sqlstat.record reg ~label ~fingerprint:fp ~rows:1 ~work:10 ~reads:2
      ~writes:1 ~exec_ns:600 ~pager_ns:50 ~latency_ns:lat ()
  in
  record "SELECT a FROM t WHERE a = ?" 1000;
  record "SELECT a FROM t WHERE a = ?" 3000;
  record ~label:"kv" "SELECT v FROM kv WHERE k = ?" 2000;
  (match Sqlstat.entries reg with
  | [ pt; kv ] ->
      Alcotest.(check string) "sorted by fingerprint" "SELECT a FROM t WHERE a = ?"
        pt.Sqlstat.sq_fingerprint;
      Alcotest.(check int) "count" 2 pt.Sqlstat.sq_count;
      Alcotest.(check int) "rows" 2 pt.Sqlstat.sq_rows;
      Alcotest.(check int) "exec_ns" 1200 pt.Sqlstat.sq_exec_ns;
      Alcotest.(check int) "kv count" 1 kv.Sqlstat.sq_count;
      Alcotest.(check string) "label" "kv" kv.Sqlstat.sq_label
  | l -> Alcotest.failf "expected 2 entries, got %d" (List.length l));
  (* merge is pure and commutative; JSON is canonical *)
  let reg2 = Sqlstat.create () in
  Sqlstat.record reg2 ~label:"point" ~fingerprint:"SELECT a FROM t WHERE a = ?"
    ~rows:5 ~work:1 ~reads:0 ~writes:0 ~exec_ns:60 ~pager_ns:0 ~latency_ns:500 ();
  let m1 = Sqlstat.merge reg reg2 and m2 = Sqlstat.merge reg2 reg in
  Alcotest.(check string) "merge commutes (canonical JSON)"
    (Twine_obs.Json.to_string (Sqlstat.to_json m1))
    (Twine_obs.Json.to_string (Sqlstat.to_json m2));
  (match Sqlstat.entries m1 with
  | [ pt; _ ] ->
      Alcotest.(check int) "merged count" 3 pt.Sqlstat.sq_count;
      Alcotest.(check int) "merged rows" 7 pt.Sqlstat.sq_rows;
      Alcotest.(check bool) "p50 within inserted range" true
        (let p = Sqlstat.quantile_ns pt 0.5 in
         p >= 500 && p <= 3000)
  | _ -> Alcotest.fail "merge lost entries");
  (* the sources were not mutated by merge *)
  Alcotest.(check int) "source untouched" 2
    (match Sqlstat.entries reg with
    | [ pt; _ ] -> pt.Sqlstat.sq_count
    | _ -> -1)

let test_slice_ns () =
  (* slices sum exactly to the total (zero residue), in proportion *)
  let check name total works =
    let s = Db.slice_ns ~total_ns:total works in
    Alcotest.(check int) (name ^ ": length") (List.length works) (List.length s);
    Alcotest.(check int) (name ^ ": sums to total") total
      (List.fold_left ( + ) 0 s);
    List.iter (fun x -> Alcotest.(check bool) (name ^ ": non-negative") true (x >= 0)) s
  in
  check "even" 1000 [ 1; 1; 1; 1 ];
  check "skewed" 997 [ 90; 9; 1 ];
  check "one" 123 [ 7 ];
  check "zeros" 55 [ 0; 0; 0 ];
  check "big" 1_000_000_007 [ 3; 5; 7; 11; 13 ];
  Alcotest.(check (list int)) "empty" [] (Db.slice_ns ~total_ns:100 []);
  Alcotest.(check (list int)) "proportional" [ 250; 750 ]
    (Db.slice_ns ~total_ns:1000 [ 1; 3 ])

let qc = QCheck_alcotest.to_alcotest

let suite =
  [ ("value", [
      Alcotest.test_case "ordering" `Quick test_value_compare;
      Alcotest.test_case "arithmetic" `Quick test_value_arith;
      Alcotest.test_case "like" `Quick test_value_like;
      qc prop_record_roundtrip;
    ]);
    ("pager", [
      Alcotest.test_case "commit" `Quick test_pager_txn_commit;
      Alcotest.test_case "rollback" `Quick test_pager_rollback;
      Alcotest.test_case "crash recovery" `Quick test_pager_crash_recovery;
      Alcotest.test_case "freelist reuse" `Quick test_pager_freelist_reuse;
    ]);
    ("btree", [
      Alcotest.test_case "insert/lookup" `Quick test_btree_insert_lookup;
      Alcotest.test_case "random order" `Quick test_btree_random_order_inserts;
      Alcotest.test_case "range iteration" `Quick test_btree_range_iteration;
      Alcotest.test_case "replace/delete" `Quick test_btree_replace_and_delete;
      Alcotest.test_case "large payloads" `Quick test_btree_large_payloads;
      Alcotest.test_case "index ops" `Quick test_btree_index_ops;
    ]);
    ("sql", [
      Alcotest.test_case "create/insert/select" `Quick test_create_insert_select;
      Alcotest.test_case "where + expressions" `Quick test_where_and_expressions;
      Alcotest.test_case "like + functions" `Quick test_like_and_functions;
      Alcotest.test_case "aggregates + group by" `Quick test_aggregates_group_by;
      Alcotest.test_case "order/limit/distinct" `Quick test_order_limit_distinct;
      Alcotest.test_case "update/delete" `Quick test_update_delete;
      Alcotest.test_case "rowid plan + pk" `Quick test_rowid_plan_and_pk;
      Alcotest.test_case "secondary index" `Quick test_secondary_index;
      Alcotest.test_case "unique index" `Quick test_unique_index;
      Alcotest.test_case "join" `Quick test_join;
      Alcotest.test_case "transactions" `Quick test_transactions;
      Alcotest.test_case "persistence" `Quick test_persistence;
      Alcotest.test_case "drop + vacuum" `Quick test_drop_and_vacuum;
      Alcotest.test_case "analyze" `Quick test_analyze;
      Alcotest.test_case "pragma" `Quick test_pragma_cache_size;
      Alcotest.test_case "not null + default" `Quick test_not_null_and_default;
      Alcotest.test_case "errors" `Quick test_sql_errors;
      Alcotest.test_case "random()" `Quick test_random_functions;
      Alcotest.test_case "multi-statement" `Quick test_multi_statement_exec;
    ]);
    ("explain", [
      Alcotest.test_case "roundtrip every kind" `Quick test_explain_roundtrip;
      Alcotest.test_case "plan rendering" `Quick test_explain_output;
      Alcotest.test_case "operator conservation" `Quick test_operator_conservation;
      Alcotest.test_case "plan counters" `Quick test_plan_counters;
      Alcotest.test_case "analyze stat tables" `Quick test_analyze_stat_tables;
    ]);
    ("sqlstat", [
      Alcotest.test_case "fingerprint" `Quick test_fingerprint;
      Alcotest.test_case "registry + merge" `Quick test_sqlstat_registry;
      Alcotest.test_case "slice_ns" `Quick test_slice_ns;
    ]);
  ]

let () = Alcotest.run "twine_sqldb" suite
