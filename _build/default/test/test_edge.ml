(* Edge-case tests across the stack: SQL corner semantics, WASI fd-table
   corners, Wasm memory growth under AoT, strict-mode TWINE, and the
   OS-directory backing path. *)

open Twine_sqldb

let v_int n = Value.Int (Int64.of_int n)
let v_text s = Value.Text s
let value_t = Alcotest.testable (Fmt.of_to_string Value.to_string) Value.equal
let rows_t = Alcotest.(list (list value_t))

let mem_db () = Db.open_db ":memory:"

(* --- SQL corner semantics --- *)

let test_aggregates_on_empty_table () =
  let db = mem_db () in
  ignore (Db.exec db "CREATE TABLE t(x INTEGER)");
  Alcotest.check rows_t "count empty" [ [ v_int 0 ] ] (Db.query db "SELECT count(*) FROM t");
  Alcotest.check rows_t "sum empty is NULL" [ [ Value.Null ] ]
    (Db.query db "SELECT sum(x) FROM t");
  Alcotest.check rows_t "avg empty is NULL" [ [ Value.Null ] ]
    (Db.query db "SELECT avg(x) FROM t");
  Alcotest.check rows_t "min empty is NULL" [ [ Value.Null ] ]
    (Db.query db "SELECT min(x) FROM t");
  (* GROUP BY over empty input yields no rows at all *)
  Alcotest.check rows_t "group by empty" []
    (Db.query db "SELECT x, count(*) FROM t GROUP BY x");
  Db.close db

let test_null_semantics () =
  let db = mem_db () in
  ignore (Db.exec db "CREATE TABLE t(x INTEGER)");
  ignore (Db.exec db "INSERT INTO t VALUES (1), (NULL), (2), (NULL)");
  (* NULL never matches =, <>, or IN *)
  Alcotest.check rows_t "= NULL matches nothing" [ [ v_int 0 ] ]
    (Db.query db "SELECT count(*) FROM t WHERE x = NULL");
  Alcotest.check rows_t "<> excludes NULLs" [ [ v_int 1 ] ]
    (Db.query db "SELECT count(*) FROM t WHERE x <> 1");
  Alcotest.check rows_t "IN ignores NULL rows" [ [ v_int 1 ] ]
    (Db.query db "SELECT count(*) FROM t WHERE x IN (1, NULL)");
  (* count of a column skips NULL, count-star does not *)
  Alcotest.check rows_t "count(x) vs count(*)" [ [ v_int 2; v_int 4 ] ]
    (Db.query db "SELECT count(x), count(*) FROM t");
  (* NULLs sort first (SQLite storage-class order) *)
  Alcotest.check rows_t "nulls first asc"
    [ [ Value.Null ]; [ Value.Null ]; [ v_int 1 ]; [ v_int 2 ] ]
    (Db.query db "SELECT x FROM t ORDER BY x");
  Db.close db

let test_case_cast_literals () =
  let db = mem_db () in
  Alcotest.check rows_t "case without match, no else" [ [ Value.Null ] ]
    (Db.query db "SELECT CASE WHEN 1 = 2 THEN 'x' END");
  Alcotest.check rows_t "cast text to integer" [ [ v_int 42 ] ]
    (Db.query db "SELECT CAST('42' AS INTEGER)");
  Alcotest.check rows_t "cast real to integer truncates" [ [ v_int 3 ] ]
    (Db.query db "SELECT CAST(3.9 AS INTEGER)");
  Alcotest.check rows_t "blob literal" [ [ v_int 3 ] ]
    (Db.query db "SELECT length(x'aabbcc')");
  Alcotest.check rows_t "hex of blob" [ [ v_text "AABBCC" ] ]
    (Db.query db "SELECT upper(hex(x'aabbcc'))");
  Alcotest.check rows_t "string '' escape" [ [ v_text "it's" ] ]
    (Db.query db "SELECT 'it''s'");
  Alcotest.check rows_t "unary minus precedence" [ [ v_int (-7) ] ]
    (Db.query db "SELECT -3 - 4");
  Alcotest.check rows_t "integer division" [ [ v_int 2 ] ] (Db.query db "SELECT 7 / 3");
  Alcotest.check rows_t "modulo" [ [ v_int 1 ] ] (Db.query db "SELECT 7 % 3");
  Db.close db

let test_sql_comments_and_quoting () =
  let db = mem_db () in
  ignore
    (Db.exec db
       "CREATE TABLE \"select table\"(x INTEGER) -- weird name\n/* block\ncomment */");
  ignore (Db.exec db "INSERT INTO \"select table\" VALUES (5)");
  Alcotest.check rows_t "quoted identifier" [ [ v_int 5 ] ]
    (Db.query db "SELECT x FROM \"select table\"");
  Db.close db

let test_between_and_text_comparison () =
  let db = mem_db () in
  ignore (Db.exec db "CREATE TABLE t(s TEXT)");
  ignore (Db.exec db "INSERT INTO t VALUES ('apple'),('banana'),('cherry')");
  Alcotest.check rows_t "text between" [ [ v_text "banana" ] ]
    (Db.query db "SELECT s FROM t WHERE s BETWEEN 'b' AND 'c'");
  (* cross-class comparison: INTEGER < TEXT always *)
  ignore (Db.exec db "INSERT INTO t VALUES (42)");
  Alcotest.check rows_t "int sorts before text" [ [ v_int 42 ] ]
    (Db.query db "SELECT s FROM t ORDER BY s LIMIT 1");
  Db.close db

let test_update_pk_column_and_where_rowid_expr () =
  let db = mem_db () in
  ignore (Db.exec db "CREATE TABLE t(id INTEGER PRIMARY KEY, v INTEGER)");
  ignore (Db.exec db "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
  (* rowid plan with arithmetic on the constant side *)
  Alcotest.check rows_t "rowid = 1+1" [ [ v_int 20 ] ]
    (Db.query db "SELECT v FROM t WHERE id = 1 + 1");
  (* non-constant comparisons fall back to a scan and still work *)
  Alcotest.check rows_t "id = v/10" [ [ v_int 1 ]; [ v_int 2 ]; [ v_int 3 ] ]
    (Db.query db "SELECT id FROM t WHERE id = v / 10 ORDER BY id");
  Db.close db

let test_multi_column_index_prefix () =
  let db = mem_db () in
  ignore (Db.exec db "CREATE TABLE t(a INTEGER, b INTEGER, c INTEGER)");
  ignore (Db.exec db "CREATE INDEX t_ab ON t(a, b)");
  ignore (Db.exec db "BEGIN");
  for i = 0 to 199 do
    ignore
      (Db.exec db
         (Printf.sprintf "INSERT INTO t VALUES (%d, %d, %d)" (i mod 10) (i mod 7) i))
  done;
  ignore (Db.exec db "COMMIT");
  (* equality on the index prefix column *)
  Alcotest.check rows_t "prefix equality" [ [ v_int 20 ] ]
    (Db.query db "SELECT count(*) FROM t WHERE a = 3");
  (* must agree with a forced scan *)
  Alcotest.(check bool) "same as scan" true
    (Db.query db "SELECT count(*) FROM t WHERE a = 3"
    = Db.query db "SELECT count(*) FROM t WHERE a + 0 = 3");
  Db.close db

let test_vacuum_preserves_indexes () =
  let db = mem_db () in
  ignore (Db.exec db "CREATE TABLE t(id INTEGER PRIMARY KEY, v TEXT)");
  ignore (Db.exec db "CREATE INDEX t_v ON t(v)");
  ignore (Db.exec db "BEGIN");
  for i = 1 to 300 do
    ignore (Db.exec db (Printf.sprintf "INSERT INTO t VALUES (%d, 'w%d')" i (i mod 20)))
  done;
  ignore (Db.exec db "COMMIT");
  ignore (Db.exec db "DELETE FROM t WHERE id % 2 = 0");
  let before = Db.query db "SELECT count(*) FROM t WHERE v = 'w5'" in
  ignore (Db.exec db "VACUUM");
  Alcotest.check rows_t "index answers unchanged after vacuum" before
    (Db.query db "SELECT count(*) FROM t WHERE v = 'w5'");
  Alcotest.check rows_t "row count after vacuum" [ [ v_int 150 ] ]
    (Db.query db "SELECT count(*) FROM t");
  Db.close db

let test_last_insert_rowid_and_auto_pk () =
  let db = mem_db () in
  ignore (Db.exec db "CREATE TABLE t(id INTEGER PRIMARY KEY, v TEXT)");
  ignore (Db.exec db "INSERT INTO t(v) VALUES ('a')");
  Alcotest.(check int64) "first rowid" 1L (Db.last_insert_rowid db);
  ignore (Db.exec db "INSERT INTO t VALUES (10, 'b')");
  ignore (Db.exec db "INSERT INTO t(v) VALUES ('c')");
  Alcotest.(check int64) "continues after explicit pk" 11L (Db.last_insert_rowid db);
  ignore (Db.exec db "DELETE FROM t WHERE id = 11");
  ignore (Db.exec db "INSERT INTO t(v) VALUES ('d')");
  (* max-rowid + 1 semantics (not AUTOINCREMENT persistence) *)
  Alcotest.(check int64) "reuses max+1" 11L (Db.last_insert_rowid db);
  Db.close db

(* --- WASI corners --- *)

open Twine_wasm
open Twine_wasm.Values
open Twine_wasi

let wasi_setup ?preopens () =
  let ctx = Api.create ?preopens () in
  let inst =
    Interp.instantiate ~imports:(Api.imports ctx)
      (Wat.parse {|(module (memory (export "memory") 2))|})
  in
  Api.bind_memory ctx inst;
  let fns = Api.functions ctx in
  let call name vargs =
    match List.assoc_opt name fns with
    | Some f -> (
        match Interp.call_func f vargs with
        | [ I32 e ] -> Int32.to_int e
        | _ -> -1)
    | None -> -1
  in
  (Api.memory ctx, call)

let i v = I32 (Int32.of_int v)
let l v = I64 (Int64.of_int v)

let wasi_open m call name =
  Memory.store_bytes m 2000 name;
  let e =
    call "path_open"
      [ i 3; i 0; i 2000; i (String.length name); i 1; I64 0x1fffffffL; I64 0L; i 0;
        i 2100 ]
  in
  Alcotest.(check int) ("open " ^ name) 0 e;
  Int32.to_int (Memory.load32 m 2100)

let test_wasi_fd_allocate_and_seek_past_eof () =
  let m, call = wasi_setup ~preopens:[ (".", Vfs.memory ()) ] () in
  let fd = wasi_open m call "sparse.bin" in
  Alcotest.(check int) "allocate" 0 (call "fd_allocate" [ i fd; l 100; l 24 ]);
  Alcotest.(check int) "filestat" 0 (call "fd_filestat_get" [ i fd; i 400 ]);
  Alcotest.(check int) "size grew" 124 (Int64.to_int (Memory.load64 m 432));
  (* seek far past EOF then write — POSIX sparse semantics *)
  Alcotest.(check int) "seek" 0 (call "fd_seek" [ i fd; l 5000; i 0; i 88 ]);
  Memory.store_bytes m 1000 "tail";
  Memory.store32 m 64 1000l;
  Memory.store32 m 68 4l;
  Alcotest.(check int) "write at 5000" 0 (call "fd_write" [ i fd; i 64; i 1; i 80 ]);
  Alcotest.(check int) "filestat2" 0 (call "fd_filestat_get" [ i fd; i 400 ]);
  Alcotest.(check int) "size 5004" 5004 (Int64.to_int (Memory.load64 m 432))

let test_wasi_exclusive_create () =
  let m, call = wasi_setup ~preopens:[ (".", Vfs.memory ()) ] () in
  let fd = wasi_open m call "once" in
  Alcotest.(check int) "close" 0 (call "fd_close" [ i fd ]);
  Memory.store_bytes m 2000 "once";
  (* O_CREAT|O_EXCL on existing file *)
  Alcotest.(check int) "excl fails" Errno.eexist
    (call "path_open"
       [ i 3; i 0; i 2000; i 4; i 5; I64 0x1fffffffL; I64 0L; i 0; i 2100 ])

let test_wasi_trunc_flag () =
  let m, call = wasi_setup ~preopens:[ (".", Vfs.memory ()) ] () in
  let fd = wasi_open m call "t.txt" in
  Memory.store_bytes m 1000 "0123456789";
  Memory.store32 m 64 1000l;
  Memory.store32 m 68 10l;
  Alcotest.(check int) "write" 0 (call "fd_write" [ i fd; i 64; i 1; i 80 ]);
  Alcotest.(check int) "close" 0 (call "fd_close" [ i fd ]);
  (* reopen with TRUNC (8) *)
  Memory.store_bytes m 2000 "t.txt";
  Alcotest.(check int) "reopen trunc" 0
    (call "path_open" [ i 3; i 0; i 2000; i 5; i 9; I64 0x1fffffffL; I64 0L; i 0; i 2100 ]);
  let fd2 = Int32.to_int (Memory.load32 m 2100) in
  Alcotest.(check int) "filestat" 0 (call "fd_filestat_get" [ i fd2; i 400 ]);
  Alcotest.(check int) "truncated to zero" 0 (Int64.to_int (Memory.load64 m 432))

let test_wasi_append_flag () =
  let m, call = wasi_setup ~preopens:[ (".", Vfs.memory ()) ] () in
  let fd = wasi_open m call "log" in
  Memory.store_bytes m 1000 "first.";
  Memory.store32 m 64 1000l;
  Memory.store32 m 68 6l;
  ignore (call "fd_write" [ i fd; i 64; i 1; i 80 ]);
  ignore (call "fd_close" [ i fd ]);
  (* reopen with APPEND fdflag (1) *)
  Memory.store_bytes m 2000 "log";
  ignore
    (call "path_open" [ i 3; i 0; i 2000; i 3; i 0; I64 0x1fffffffL; I64 0L; i 1; i 2100 ]);
  let fd2 = Int32.to_int (Memory.load32 m 2100) in
  Memory.store_bytes m 1010 "second";
  Memory.store32 m 64 1010l;
  Memory.store32 m 68 6l;
  ignore (call "fd_write" [ i fd2; i 64; i 1; i 80 ]);
  ignore (call "fd_seek" [ i fd2; l 0; i 0; i 88 ]);
  Memory.store32 m 64 3000l;
  Memory.store32 m 68 20l;
  ignore (call "fd_read" [ i fd2; i 64; i 1; i 80 ]);
  Alcotest.(check string) "appended" "first.second" (Memory.load_bytes m 3000 12)

(* --- Wasm memory growth under AoT --- *)

let test_memory_grow_visible_to_aot () =
  let src =
    {|(module
        (memory (export "memory") 1 4)
        (func (export "probe") (param $addr i32) (result i32)
          (i32.load (local.get $addr)))
        (func (export "grow") (result i32) (memory.grow (i32.const 1)))
        (func (export "poke") (param $addr i32) (param $v i32)
          (i32.store (local.get $addr) (local.get $v))))|}
  in
  let m = Wat.parse src in
  let inst = Interp.instantiate m in
  ignore (Aot.compile_instance inst);
  (* address 70000 is out of bounds before growth *)
  Alcotest.(check bool) "oob before grow" true
    (try
       ignore (Interp.invoke inst "probe" [ I32 70_000l ]);
       false
     with Trap _ -> true);
  Alcotest.(check (list bool)) "grow returns old size" [ true ]
    (match Interp.invoke inst "grow" [] with [ I32 1l ] -> [ true ] | _ -> [ false ]);
  ignore (Interp.invoke inst "poke" [ I32 70_000l; I32 77l ]);
  Alcotest.(check bool) "aot code sees grown memory" true
    (Interp.invoke inst "probe" [ I32 70_000l ] = [ I32 77l ])

let test_deep_recursion () =
  let src =
    {|(module
        (func $down (export "down") (param i32) (result i32)
          (if (result i32) (i32.eqz (local.get 0))
            (then (i32.const 0))
            (else (i32.add (i32.const 1)
                           (call $down (i32.sub (local.get 0) (i32.const 1))))))))|}
  in
  let inst = Interp.instantiate (Wat.parse src) in
  Alcotest.(check (list bool)) "10k frames" [ true ]
    (match Interp.invoke inst "down" [ I32 10_000l ] with
    | [ I32 10_000l ] -> [ true ]
    | _ -> [ false ])

(* --- TWINE strict mode and OS-backed storage --- *)

let test_strict_mode_blocks_untrusted_calls () =
  let machine = Twine_sgx.Machine.create ~seed:"strict" () in
  let config = { Twine.Runtime.default_config with strict_wasi = true } in
  let rt = Twine.Runtime.create ~config machine in
  (* clock_time_get needs the untrusted POSIX layer; random_get does not *)
  let clock_app =
    {|(module
        (import "wasi_snapshot_preview1" "clock_time_get"
          (func $c (param i32 i64 i32) (result i32)))
        (memory (export "memory") 1)
        (func (export "_start")
          (drop (call $c (i32.const 1) (i64.const 0) (i32.const 64)))))|}
  in
  Twine.Runtime.deploy rt (Wat.parse clock_app);
  Alcotest.(check bool) "untrusted call rejected in strict mode" true
    (try
       ignore (Twine.Runtime.run rt);
       false
     with Invalid_argument _ -> true);
  let random_app =
    {|(module
        (import "wasi_snapshot_preview1" "random_get"
          (func $r (param i32 i32) (result i32)))
        (memory (export "memory") 1)
        (func (export "_start")
          (drop (call $r (i32.const 64) (i32.const 8)))))|}
  in
  let rt2 = Twine.Runtime.create ~config machine in
  Twine.Runtime.deploy rt2 (Wat.parse random_app);
  let r = Twine.Runtime.run rt2 in
  Alcotest.(check int) "trusted impls still work" 0 r.Twine.Runtime.exit_code

let test_directory_backing_roundtrip () =
  let dir = Filename.temp_file "twine" "" in
  Sys.remove dir;
  let backing = Twine_ipfs.Backing.directory dir in
  let machine = Twine_sgx.Machine.create ~seed:"dirb" () in
  let e = Twine_sgx.Enclave.create machine ~code:"d" () in
  let fs = Twine_ipfs.Protected_fs.create e backing () in
  let f = Twine_ipfs.Protected_fs.open_file fs ~mode:`Trunc "real.dat" in
  ignore (Twine_ipfs.Protected_fs.write f (String.make 9000 'R'));
  Twine_ipfs.Protected_fs.close f;
  (* real ciphertext files exist on the host file system *)
  Alcotest.(check bool) "files on disk" true (Array.length (Sys.readdir dir) >= 2);
  let f2 = Twine_ipfs.Protected_fs.open_file fs ~mode:`Rdonly "real.dat" in
  let buf = Bytes.create 9000 in
  let rec drain off =
    if off < 9000 then begin
      let n = Twine_ipfs.Protected_fs.read f2 buf ~off ~len:(9000 - off) in
      if n > 0 then drain (off + n)
    end
  in
  drain 0;
  Twine_ipfs.Protected_fs.close f2;
  Alcotest.(check bool) "roundtrip through real files" true
    (Bytes.to_string buf = String.make 9000 'R');
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

let suite =
  [ ("sql-corners", [
      Alcotest.test_case "aggregates on empty" `Quick test_aggregates_on_empty_table;
      Alcotest.test_case "null semantics" `Quick test_null_semantics;
      Alcotest.test_case "case/cast/literals" `Quick test_case_cast_literals;
      Alcotest.test_case "comments + quoting" `Quick test_sql_comments_and_quoting;
      Alcotest.test_case "between + text order" `Quick test_between_and_text_comparison;
      Alcotest.test_case "rowid plans" `Quick test_update_pk_column_and_where_rowid_expr;
      Alcotest.test_case "multi-column index" `Quick test_multi_column_index_prefix;
      Alcotest.test_case "vacuum + indexes" `Quick test_vacuum_preserves_indexes;
      Alcotest.test_case "last_insert_rowid" `Quick test_last_insert_rowid_and_auto_pk;
    ]);
    ("wasi-corners", [
      Alcotest.test_case "allocate + sparse write" `Quick test_wasi_fd_allocate_and_seek_past_eof;
      Alcotest.test_case "exclusive create" `Quick test_wasi_exclusive_create;
      Alcotest.test_case "trunc flag" `Quick test_wasi_trunc_flag;
      Alcotest.test_case "append flag" `Quick test_wasi_append_flag;
    ]);
    ("wasm-corners", [
      Alcotest.test_case "memory.grow under aot" `Quick test_memory_grow_visible_to_aot;
      Alcotest.test_case "deep recursion" `Quick test_deep_recursion;
    ]);
    ("twine-corners", [
      Alcotest.test_case "strict wasi mode" `Quick test_strict_mode_blocks_untrusted_calls;
      Alcotest.test_case "directory backing" `Quick test_directory_backing_roundtrip;
    ]);
  ]

let () = Alcotest.run "twine_edge" suite
