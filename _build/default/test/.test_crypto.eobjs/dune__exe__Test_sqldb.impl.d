test/test_sqldb.ml: Alcotest Array Btree Bytes Char Db Fmt Int64 List Option Pager Parser Printf QCheck QCheck_alcotest Record String Svfs Twine_crypto Twine_sqldb Value
