test/test_sim.ml: Alcotest Clock List Lru Meter QCheck QCheck_alcotest Test Twine_sim
