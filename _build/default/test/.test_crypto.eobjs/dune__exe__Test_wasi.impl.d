test/test_wasi.ml: Alcotest Api Buffer Char Errno Int32 Int64 Interp List Memory String Twine_wasi Twine_wasm Vfs Wat
