test/test_ipfs.ml: Alcotest Backing Bytes Char Enclave Filename List Machine Option Printf Protected_fs QCheck QCheck_alcotest Result String Sys Twine_crypto Twine_ipfs Twine_sgx Twine_sim Unix
