test/test_twine.ml: Alcotest Attestation Bench_db List Machine Microbench Printf Runtime Speedtest String Twine Twine_ipfs Twine_sgx Twine_wasm
