test/test_twine.mli:
