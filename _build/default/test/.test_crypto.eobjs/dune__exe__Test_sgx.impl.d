test/test_sgx.ml: Alcotest Attestation Bytes Char Costs Enclave Epc Machine Seal String Twine_sgx Twine_sim
