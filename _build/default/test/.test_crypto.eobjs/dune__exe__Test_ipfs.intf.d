test/test_ipfs.mli:
