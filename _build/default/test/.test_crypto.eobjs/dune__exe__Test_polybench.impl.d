test/test_polybench.ml: Alcotest Float Kernel_dsl Kernels List Printf Suite Twine_polybench Twine_wasm
