test/test_edge.ml: Alcotest Aot Api Array Bytes Db Errno Filename Fmt Int32 Int64 Interp List Memory Printf String Sys Twine Twine_ipfs Twine_sgx Twine_sqldb Twine_wasi Twine_wasm Unix Value Vfs Wat
