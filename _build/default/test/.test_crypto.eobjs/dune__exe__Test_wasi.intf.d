test/test_wasi.mli:
