test/test_wasm.ml: Alcotest Aot Binary Builder Float Fmt Instance Int32 Interp List QCheck QCheck_alcotest String Twine_wasm Types Validate Values Wat
