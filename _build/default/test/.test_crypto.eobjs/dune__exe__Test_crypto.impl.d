test/test_crypto.ml: Aes Alcotest Bytes Ccm Char Drbg Gcm Gen Hexcodec Hmac List Modes Printf QCheck QCheck_alcotest Sha256 String Twine_crypto
