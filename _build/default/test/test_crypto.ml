(* Crypto substrate tests: published test vectors (FIPS 197, FIPS 180-4,
   RFC 4231, NIST GCM, RFC 3610 CCM) plus property-based round-trips. *)

open Twine_crypto

let hex = Hexcodec.decode

let check_hex msg expected actual =
  Alcotest.(check string) msg expected (Hexcodec.encode actual)

(* --- AES block cipher --- *)

let test_aes128_fips197 () =
  let k = Aes.expand (hex "000102030405060708090a0b0c0d0e0f") in
  let ct = Aes.encrypt_block_str k (hex "00112233445566778899aabbccddeeff") in
  check_hex "AES-128 encrypt" "69c4e0d86a7b0430d8cdb78070b4c55a" ct;
  let pt = Aes.decrypt_block_str k ct in
  check_hex "AES-128 decrypt" "00112233445566778899aabbccddeeff" pt

let test_aes192_fips197 () =
  let k = Aes.expand (hex "000102030405060708090a0b0c0d0e0f1011121314151617") in
  let ct = Aes.encrypt_block_str k (hex "00112233445566778899aabbccddeeff") in
  check_hex "AES-192 encrypt" "dda97ca4864cdfe06eaf70a0ec0d7191" ct

let test_aes256_fips197 () =
  let k =
    Aes.expand (hex "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
  in
  Alcotest.(check int) "bits" 256 (Aes.key_bits k);
  let ct = Aes.encrypt_block_str k (hex "00112233445566778899aabbccddeeff") in
  check_hex "AES-256 encrypt" "8ea2b7ca516745bfeafc49904b496089" ct;
  check_hex "AES-256 decrypt" "00112233445566778899aabbccddeeff" (Aes.decrypt_block_str k ct)

let test_aes_bad_key () =
  Alcotest.check_raises "bad length" (Invalid_argument "Aes.expand: bad key length 5")
    (fun () -> ignore (Aes.expand "12345"))

let prop_aes_roundtrip =
  QCheck.Test.make ~name:"aes encrypt/decrypt roundtrip" ~count:200
    QCheck.(pair (string_of_size (Gen.return 16)) (string_of_size (Gen.return 16)))
    (fun (key, block) ->
      let k = Aes.expand key in
      Aes.decrypt_block_str k (Aes.encrypt_block_str k block) = block)

(* --- SHA-256 --- *)

let test_sha256_vectors () =
  check_hex "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.digest "");
  check_hex "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.digest "abc");
  check_hex "448-bit msg"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_hex "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest (String.make 1_000_000 'a'))

let test_sha256_incremental () =
  let whole = Sha256.digest "the quick brown fox jumps over the lazy dog" in
  let ctx = Sha256.init () in
  Sha256.update ctx "the quick brown fox";
  Sha256.update ctx " jumps over";
  Sha256.update ctx " the lazy dog";
  Alcotest.(check string) "incremental = one-shot" (Hexcodec.encode whole)
    (Hexcodec.encode (Sha256.finalize ctx))

let prop_sha256_incremental_split =
  QCheck.Test.make ~name:"sha256 split-at-any-point" ~count:200
    QCheck.(pair (string_of_size Gen.(int_range 0 300)) small_nat)
    (fun (s, cut) ->
      let cut = if String.length s = 0 then 0 else cut mod (String.length s + 1) in
      let ctx = Sha256.init () in
      Sha256.update ctx (String.sub s 0 cut);
      Sha256.update ctx (String.sub s cut (String.length s - cut));
      Sha256.finalize ctx = Sha256.digest s)

(* --- HMAC / HKDF --- *)

let test_hmac_rfc4231 () =
  check_hex "case 1" "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.hmac_sha256 ~key:(String.make 20 '\x0b') "Hi There");
  check_hex "case 2" "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.hmac_sha256 ~key:"Jefe" "what do ya want for nothing?")

let test_hkdf_rfc5869 () =
  (* RFC 5869 test case 1 *)
  let ikm = hex "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b" in
  let salt = hex "000102030405060708090a0b0c" in
  let prk = Hmac.hkdf_extract ~salt ikm in
  check_hex "prk" "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5" prk;
  let okm = Hmac.hkdf_expand ~prk ~info:(hex "f0f1f2f3f4f5f6f7f8f9") ~length:42 in
  check_hex "okm"
    "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
    okm

let test_derive_lengths () =
  List.iter
    (fun n ->
      Alcotest.(check int) (Printf.sprintf "derive %d" n) n
        (String.length (Hmac.derive ~key:"k" ~info:"i" ~length:n)))
    [ 0; 1; 16; 31; 32; 33; 64; 100 ]

(* --- GCM --- *)

let gcm_key_128 = "feffe9928665731c6d6a8f9467308308"

let test_gcm_nist_case3 () =
  let k = Gcm.of_raw (hex gcm_key_128) in
  let iv = hex "cafebabefacedbaddecaf888" in
  let pt =
    hex
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a721c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255"
  in
  let ct, tag = Gcm.encrypt k ~iv pt in
  check_hex "ciphertext"
    "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
    ct;
  check_hex "tag" "4d5c2af327cd64a62cf35abd2ba6fab4" tag;
  match Gcm.decrypt k ~iv ~tag ct with
  | Some pt' -> Alcotest.(check string) "roundtrip" (Hexcodec.encode pt) (Hexcodec.encode pt')
  | None -> Alcotest.fail "tag rejected"

let test_gcm_nist_case4_aad () =
  let k = Gcm.of_raw (hex gcm_key_128) in
  let iv = hex "cafebabefacedbaddecaf888" in
  let aad = hex "feedfacedeadbeeffeedfacedeadbeefabaddad2" in
  let pt =
    hex
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a721c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39"
  in
  let ct, tag = Gcm.encrypt k ~iv ~aad pt in
  check_hex "ciphertext"
    "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
    ct;
  check_hex "tag" "5bc94fbc3221a5db94fae95ae7121a47" tag

let test_gcm_empty () =
  (* NIST case 1: empty plaintext, zero key/IV *)
  let k = Gcm.of_raw (String.make 16 '\000') in
  let ct, tag = Gcm.encrypt k ~iv:(String.make 12 '\000') "" in
  Alcotest.(check string) "ct empty" "" ct;
  check_hex "tag" "58e2fccefa7e3061367f1d57a4e7455a" tag

let test_gcm_tamper () =
  let k = Gcm.of_raw (hex gcm_key_128) in
  let iv = String.make 12 '\x42' in
  let ct, tag = Gcm.encrypt k ~iv "attack at dawn!!" in
  let bad = Bytes.of_string ct in
  Bytes.set bad 3 (Char.chr (Char.code (Bytes.get bad 3) lxor 1));
  Alcotest.(check bool) "tampered ct rejected" true
    (Gcm.decrypt k ~iv ~tag (Bytes.to_string bad) = None);
  let bad_tag = String.mapi (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c) tag in
  Alcotest.(check bool) "tampered tag rejected" true
    (Gcm.decrypt k ~iv ~tag:bad_tag ct = None);
  Alcotest.(check bool) "wrong aad rejected" true
    (Gcm.decrypt k ~iv ~aad:"x" ~tag ct = None)

let prop_gcm_roundtrip =
  QCheck.Test.make ~name:"gcm roundtrip any size" ~count:100
    QCheck.(triple (string_of_size (Gen.return 16)) (string_of_size Gen.(int_range 0 200)) string)
    (fun (key, pt, aad) ->
      let k = Gcm.of_raw key in
      let iv = String.sub (Sha256.digest key) 0 12 in
      let ct, tag = Gcm.encrypt k ~iv ~aad pt in
      Gcm.decrypt k ~iv ~aad ~tag ct = Some pt)

(* --- CCM --- *)

let test_ccm_rfc3610_1 () =
  let k = Aes.expand (hex "c0c1c2c3c4c5c6c7c8c9cacbcccdcecf") in
  let nonce = hex "00000003020100a0a1a2a3a4a5" in
  let aad = hex "0001020304050607" in
  let pt = hex "08090a0b0c0d0e0f101112131415161718191a1b1c1d1e" in
  let ct, tag = Ccm.encrypt k ~nonce ~aad ~tag_len:8 pt in
  check_hex "ciphertext" "588c979a61c663d2f066d0c2c0f989806d5f6b61dac384" ct;
  check_hex "tag" "17e8d12cfdf926e0" tag;
  match Ccm.decrypt k ~nonce ~aad ~tag ct with
  | Some pt' -> check_hex "roundtrip" (Hexcodec.encode pt) pt'
  | None -> Alcotest.fail "tag rejected"

let test_ccm_tamper () =
  let k = Aes.expand (String.make 16 'k') in
  let nonce = String.make 12 'n' in
  let ct, tag = Ccm.encrypt k ~nonce "some protected file node" in
  let bad = Bytes.of_string ct in
  Bytes.set bad 0 (Char.chr (Char.code (Bytes.get bad 0) lxor 0x80));
  Alcotest.(check bool) "tampered rejected" true
    (Ccm.decrypt k ~nonce ~tag (Bytes.to_string bad) = None)

let prop_ccm_roundtrip =
  QCheck.Test.make ~name:"ccm roundtrip any size" ~count:100
    QCheck.(pair (string_of_size (Gen.return 16)) (string_of_size Gen.(int_range 0 200)))
    (fun (key, pt) ->
      let k = Aes.expand key in
      let nonce = String.sub (Sha256.digest key) 0 13 in
      let ct, tag = Ccm.encrypt k ~nonce pt in
      Ccm.decrypt k ~nonce ~tag ct = Some pt)

(* --- Modes helpers --- *)

let test_ctr_involution () =
  let key = Aes.expand (String.make 16 'x') in
  let data = Bytes.of_string "counter mode is an involution when reapplied" in
  let mk () = Bytes.of_string (String.make 16 '\000') in
  Modes.ctr_transform key ~counter:(mk ()) data ~off:0 ~len:(Bytes.length data);
  Modes.ctr_transform key ~counter:(mk ()) data ~off:0 ~len:(Bytes.length data);
  Alcotest.(check string) "double ctr = id"
    "counter mode is an involution when reapplied" (Bytes.to_string data)

let test_inc32_carry () =
  let b = Bytes.of_string (hex "000000000000000000000000ffffffff") in
  Modes.inc32 b;
  check_hex "wraps to zero" "00000000000000000000000000000000" (Bytes.to_string b);
  let b = Bytes.of_string (hex "0102030405060708090a0b0c00ff00ff") in
  Modes.inc32 b;
  check_hex "prefix untouched" "0102030405060708090a0b0c00ff0100" (Bytes.to_string b)

let test_ct_equal () =
  Alcotest.(check bool) "equal" true (Modes.ct_equal "abcd" "abcd");
  Alcotest.(check bool) "diff" false (Modes.ct_equal "abcd" "abce");
  Alcotest.(check bool) "len" false (Modes.ct_equal "abc" "abcd")

(* --- DRBG --- *)

let test_drbg_deterministic () =
  let a = Drbg.create ~seed:"seed" () in
  let b = Drbg.create ~seed:"seed" () in
  Alcotest.(check string) "same stream" (Drbg.generate a 64) (Drbg.generate b 64);
  let c = Drbg.create ~seed:"other" () in
  Alcotest.(check bool) "different seed differs" true
    (Drbg.generate (Drbg.create ~seed:"seed" ()) 32 <> Drbg.generate c 32)

let test_drbg_personalization () =
  let a = Drbg.create ~personalization:"p1" ~seed:"s" () in
  let b = Drbg.create ~personalization:"p2" ~seed:"s" () in
  Alcotest.(check bool) "personalization separates" true
    (Drbg.generate a 32 <> Drbg.generate b 32)

let test_drbg_reseed () =
  let a = Drbg.create ~seed:"s" () in
  let b = Drbg.create ~seed:"s" () in
  ignore (Drbg.generate a 16);
  ignore (Drbg.generate b 16);
  Drbg.reseed a "fresh entropy";
  Alcotest.(check bool) "reseed diverges" true (Drbg.generate a 32 <> Drbg.generate b 32)

let prop_drbg_int_below =
  QCheck.Test.make ~name:"drbg int_below in range" ~count:200
    QCheck.(pair string (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let d = Drbg.create ~seed () in
      let v = Drbg.int_below d bound in
      v >= 0 && v < bound)

(* --- Hex --- *)

let test_hex_roundtrip () =
  Alcotest.(check string) "decode" "\x00\xff\x10" (Hexcodec.decode "00ff10");
  Alcotest.(check string) "upper" "\xab\xcd" (Hexcodec.decode "ABCD");
  Alcotest.check_raises "odd" (Invalid_argument "Hexcodec.decode: odd length")
    (fun () -> ignore (Hexcodec.decode "abc"))

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:200 QCheck.string
    (fun s -> Hexcodec.decode (Hexcodec.encode s) = s)

let qc = QCheck_alcotest.to_alcotest

let suite =
  [ ("aes", [
      Alcotest.test_case "fips197 aes-128" `Quick test_aes128_fips197;
      Alcotest.test_case "fips197 aes-192" `Quick test_aes192_fips197;
      Alcotest.test_case "fips197 aes-256" `Quick test_aes256_fips197;
      Alcotest.test_case "bad key length" `Quick test_aes_bad_key;
      qc prop_aes_roundtrip;
    ]);
    ("sha256", [
      Alcotest.test_case "nist vectors" `Quick test_sha256_vectors;
      Alcotest.test_case "incremental" `Quick test_sha256_incremental;
      qc prop_sha256_incremental_split;
    ]);
    ("hmac", [
      Alcotest.test_case "rfc4231" `Quick test_hmac_rfc4231;
      Alcotest.test_case "hkdf rfc5869" `Quick test_hkdf_rfc5869;
      Alcotest.test_case "derive lengths" `Quick test_derive_lengths;
    ]);
    ("gcm", [
      Alcotest.test_case "nist case 3" `Quick test_gcm_nist_case3;
      Alcotest.test_case "nist case 4 (aad)" `Quick test_gcm_nist_case4_aad;
      Alcotest.test_case "empty plaintext" `Quick test_gcm_empty;
      Alcotest.test_case "tamper detection" `Quick test_gcm_tamper;
      qc prop_gcm_roundtrip;
    ]);
    ("ccm", [
      Alcotest.test_case "rfc3610 vector 1" `Quick test_ccm_rfc3610_1;
      Alcotest.test_case "tamper detection" `Quick test_ccm_tamper;
      qc prop_ccm_roundtrip;
    ]);
    ("modes", [
      Alcotest.test_case "ctr involution" `Quick test_ctr_involution;
      Alcotest.test_case "inc32 carry" `Quick test_inc32_carry;
      Alcotest.test_case "ct_equal" `Quick test_ct_equal;
    ]);
    ("drbg", [
      Alcotest.test_case "deterministic" `Quick test_drbg_deterministic;
      Alcotest.test_case "personalization" `Quick test_drbg_personalization;
      Alcotest.test_case "reseed" `Quick test_drbg_reseed;
      qc prop_drbg_int_below;
    ]);
    ("hexcodec", [
      Alcotest.test_case "roundtrip" `Quick test_hex_roundtrip;
      qc prop_hex_roundtrip;
    ]);
  ]

let () = Alcotest.run "twine_crypto" suite
