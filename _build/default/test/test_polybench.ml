(* PolyBench suite tests: every kernel must produce bit-identical results
   on the native closure build, the Wasm interpreter, and the Wasm AoT
   engine — a strong end-to-end cross-check of the whole Wasm stack. *)

open Twine_polybench

let kernels = Kernels.all ~scale:0.5 ()

let test_suite_complete () =
  Alcotest.(check int) "30 kernels" 30 (List.length kernels);
  let names = List.map (fun k -> k.Kernel_dsl.name) kernels in
  Alcotest.(check int) "unique names" 30
    (List.length (List.sort_uniq compare names))

let test_kernel_validates k () =
  let d_interp = Suite.validate ~engine:`Interp k in
  Alcotest.(check (float 0.)) "native = wasm-interp" 0. d_interp;
  let d_aot = Suite.validate ~engine:`Aot k in
  Alcotest.(check (float 0.)) "native = wasm-aot" 0. d_aot

let test_outputs_nontrivial k () =
  let r = Suite.run_native k in
  let sum = Suite.checksum r in
  Alcotest.(check bool)
    (Printf.sprintf "%s produces nonzero data (checksum %g)" k.Kernel_dsl.name sum)
    true
    (Float.abs sum > 1e-12)

let test_modules_validate k () =
  let m, _ = Kernel_dsl.comp_wasm k in
  Alcotest.(check bool)
    (k.Kernel_dsl.name ^ " module passes the validator")
    true
    (Twine_wasm.Validate.is_valid m)

let test_modules_roundtrip_binary k () =
  let m, _ = Kernel_dsl.comp_wasm k in
  let m' = Twine_wasm.Binary.decode (Twine_wasm.Binary.encode m) in
  Alcotest.(check bool) (k.Kernel_dsl.name ^ " binary roundtrip") true (m = m')

let per_kernel mk =
  List.map (fun k -> Alcotest.test_case k.Kernel_dsl.name `Quick (mk k)) kernels

let suite =
  [ ("suite", [ Alcotest.test_case "complete" `Quick test_suite_complete ]);
    ("cross-validation", per_kernel test_kernel_validates);
    ("nontrivial", per_kernel test_outputs_nontrivial);
    ("validator", per_kernel test_modules_validate);
    ("binary", per_kernel test_modules_roundtrip_binary);
  ]

let () = Alcotest.run "twine_polybench" suite
