(* TWINE core tests: the trusted runtime end-to-end (attested deployment,
   reserved-memory loading, SGX-hosted WASI with protected files), the
   benchmark variants and the performance-shape invariants the paper's
   evaluation rests on. *)

open Twine
open Twine_sgx

let hello_wat =
  {|(module
      (import "wasi_snapshot_preview1" "fd_write"
        (func $fd_write (param i32 i32 i32 i32) (result i32)))
      (memory (export "memory") 1)
      (data (i32.const 100) "hello enclave\n")
      (func (export "_start")
        (i32.store (i32.const 8) (i32.const 100))
        (i32.store (i32.const 12) (i32.const 14))
        (drop (call $fd_write (i32.const 1) (i32.const 8) (i32.const 1) (i32.const 20)))))|}

(* A WASI app that persists a value to a file and reads it back, exiting
   with the number of bytes read (exercises path_open/fd_write/fd_seek/
   fd_read against the protected file system). *)
let persist_wat =
  {|(module
      (import "wasi_snapshot_preview1" "path_open"
        (func $path_open (param i32 i32 i32 i32 i32 i64 i64 i32 i32) (result i32)))
      (import "wasi_snapshot_preview1" "fd_write"
        (func $fd_write (param i32 i32 i32 i32) (result i32)))
      (import "wasi_snapshot_preview1" "fd_seek"
        (func $fd_seek (param i32 i64 i32 i32) (result i32)))
      (import "wasi_snapshot_preview1" "fd_read"
        (func $fd_read (param i32 i32 i32 i32) (result i32)))
      (import "wasi_snapshot_preview1" "proc_exit"
        (func $proc_exit (param i32)))
      (memory (export "memory") 1)
      (data (i32.const 50) "state.bin")
      (data (i32.const 100) "sealed-data")
      (func (export "_start")
        (local $fd i32)
        ;; open "state.bin" with CREAT in preopen fd 3
        (drop (call $path_open (i32.const 3) (i32.const 0) (i32.const 50) (i32.const 9)
                 (i32.const 1) (i64.const 0x1fffffff) (i64.const 0) (i32.const 0)
                 (i32.const 200)))
        (local.set $fd (i32.load (i32.const 200)))
        ;; write 11 bytes
        (i32.store (i32.const 8) (i32.const 100))
        (i32.store (i32.const 12) (i32.const 11))
        (drop (call $fd_write (local.get $fd) (i32.const 8) (i32.const 1) (i32.const 204)))
        ;; rewind, read back
        (drop (call $fd_seek (local.get $fd) (i64.const 0) (i32.const 0) (i32.const 208)))
        (i32.store (i32.const 8) (i32.const 300))
        (i32.store (i32.const 12) (i32.const 64))
        (drop (call $fd_read (local.get $fd) (i32.const 8) (i32.const 1) (i32.const 216)))
        (call $proc_exit (i32.load (i32.const 216)))))|}

let test_runtime_hello () =
  let machine = Machine.create ~seed:"rt" () in
  let rt = Runtime.create machine in
  Runtime.deploy rt (Twine_wasm.Wat.parse hello_wat);
  let r = Runtime.run rt in
  Alcotest.(check int) "exit 0" 0 r.Runtime.exit_code;
  Alcotest.(check string) "stdout" "hello enclave\n" r.Runtime.stdout

let test_runtime_interpreter_engine () =
  let machine = Machine.create ~seed:"rt-int" () in
  let config = { Runtime.default_config with engine = Runtime.Interpreter } in
  let rt = Runtime.create ~config machine in
  Runtime.deploy rt (Twine_wasm.Wat.parse hello_wat);
  let r = Runtime.run rt in
  Alcotest.(check string) "stdout" "hello enclave\n" r.Runtime.stdout;
  Alcotest.(check bool) "interpreter metered fuel" true (r.Runtime.fuel > 0)

let test_runtime_protected_persistence () =
  let machine = Machine.create ~seed:"rt-fs" () in
  let backing = Twine_ipfs.Backing.memory () in
  let rt = Runtime.create ~backing machine in
  Runtime.deploy rt (Twine_wasm.Wat.parse persist_wat);
  let r = Runtime.run rt in
  Alcotest.(check int) "read back 11 bytes" 11 r.Runtime.exit_code;
  (* the backing store must contain ciphertext only *)
  let leaked = ref false in
  List.iter
    (fun key ->
      match Twine_ipfs.Backing.size backing key with
      | None -> ()
      | Some n ->
          let raw = Twine_ipfs.Backing.read backing key ~pos:0 ~len:n in
          let rec has i =
            i + 11 <= String.length raw
            && (String.sub raw i 11 = "sealed-data" || has (i + 1))
          in
          if has 0 then leaked := true)
    (Twine_ipfs.Backing.list backing);
  Alcotest.(check bool) "no plaintext on untrusted storage" false !leaked

let test_attested_deploy_flow () =
  let machine = Machine.create ~seed:"deploy" () in
  let rt = Runtime.create machine in
  let wasm = Twine_wasm.Binary.encode (Twine_wasm.Wat.parse hello_wat) in
  let service = Attestation.service_for machine in
  let provider = Runtime.Provider.create ~wasm ~service in
  Runtime.deploy_from rt provider;
  let r = Runtime.run rt in
  Alcotest.(check string) "deployed over channel" "hello enclave\n" r.Runtime.stdout

let test_attested_deploy_rejects_rogue_machine () =
  (* the provider registered with machine A's service must refuse an
     enclave on machine B *)
  let machine_a = Machine.create ~seed:"honest" () in
  let machine_b = Machine.create ~seed:"rogue" () in
  let rt_b = Runtime.create machine_b in
  let wasm = Twine_wasm.Binary.encode (Twine_wasm.Wat.parse hello_wat) in
  let service_a = Attestation.service_for machine_a in
  let provider = Runtime.Provider.create ~wasm ~service:service_a in
  Alcotest.(check bool) "rejected" true
    (try
       Runtime.deploy_from rt_b provider;
       false
     with Runtime.Deploy_error _ -> true)

let test_deploy_rejects_invalid_module () =
  let machine = Machine.create ~seed:"badmod" () in
  let rt = Runtime.create machine in
  let bad =
    (* type error: f64 into i32 op *)
    let b = Twine_wasm.Builder.create () in
    ignore
      (Twine_wasm.Builder.add_func b ~name:"_start" ~params:[] ~results:[]
         ~locals:[]
         [ Twine_wasm.Ast.F64_const 1.0; Twine_wasm.Ast.I32_unop Twine_wasm.Ast.Clz;
           Twine_wasm.Ast.Drop ]);
    Twine_wasm.Builder.build b
  in
  Alcotest.(check bool) "validator refuses" true
    (try
       Runtime.deploy rt bad;
       false
     with Twine_wasm.Validate.Invalid _ -> true)

(* --- benchmark variants: shape invariants --- *)

let small_sizes = [ 200; 400 ]

let total_time variant storage =
  let machine = Machine.create ~seed:"shape" () in
  let r =
    Microbench.sweep ~machine ~blob_bytes:128 ~rand_reads:60
      ~wasm_factor:2.5 variant storage ~sizes:small_sizes ()
  in
  List.fold_left
    (fun acc p -> acc + p.Microbench.insert_ns + p.Microbench.seq_read_ns + p.Microbench.rand_read_ns)
    0 r.Microbench.points

let test_variant_ordering () =
  let native = total_time Bench_db.Native Bench_db.Mem in
  let wamr = total_time Bench_db.Wamr Bench_db.Mem in
  let twine = total_time Bench_db.Twine_rt Bench_db.Mem in
  Alcotest.(check bool)
    (Printf.sprintf "wamr (%d) slower than native (%d)" wamr native)
    true (wamr > native);
  Alcotest.(check bool)
    (Printf.sprintf "twine (%d) slower than wamr (%d)" twine wamr)
    true (twine > wamr)

let test_file_storage_slower_than_mem () =
  let mem = total_time Bench_db.Twine_rt Bench_db.Mem in
  let file = total_time Bench_db.Twine_rt Bench_db.File in
  Alcotest.(check bool)
    (Printf.sprintf "file (%d) slower than mem (%d)" file mem)
    true (file > mem)

let test_epc_cliff () =
  (* with a tiny EPC, random reads on an in-memory enclave database get
     dramatically slower once the database exceeds it *)
  let epc_bytes = 64 * 4096 in
  let machine = Machine.create ~seed:"cliff" ~epc_bytes () in
  let r =
    Microbench.sweep ~machine ~blob_bytes:512 ~rand_reads:150 ~wasm_factor:2.5
      Bench_db.Twine_rt Bench_db.Mem ~sizes:[ 100; 1500 ] ()
  in
  match r.Microbench.points with
  | [ small; large ] ->
      let per_read_small = small.Microbench.rand_read_ns / min 100 150 in
      let per_read_large = large.Microbench.rand_read_ns / min 1500 150 in
      Alcotest.(check bool)
        (Printf.sprintf "beyond-EPC reads (%d ns) >> within-EPC (%d ns)"
           per_read_large per_read_small)
        true
        (per_read_large > 2 * per_read_small)
  | _ -> Alcotest.fail "expected two points"

let test_fig7_breakdown_shape () =
  let stock = Microbench.ipfs_breakdown ~records:1000 ~samples:400 ~cache_pages:32
      Twine_ipfs.Protected_fs.Stock in
  let opt = Microbench.ipfs_breakdown ~records:1000 ~samples:400 ~cache_pages:32
      Twine_ipfs.Protected_fs.Optimized in
  Alcotest.(check bool) "stock spends time in memset" true (stock.Microbench.memset_ns > 0);
  Alcotest.(check int) "optimised spends none" 0 opt.Microbench.memset_ns;
  Alcotest.(check bool)
    (Printf.sprintf "optimised total (%d) < stock total (%d)"
       opt.Microbench.total_ns stock.Microbench.total_ns)
    true
    (opt.Microbench.total_ns < stock.Microbench.total_ns);
  (* §V-F: memset is the largest stock component *)
  Alcotest.(check bool) "memset dominates stock read path" true
    (stock.Microbench.memset_ns > stock.Microbench.sqlite_ns)

let test_software_mode_faster () =
  let hw = Machine.create ~seed:"fig6" ~epc_bytes:(128 * 4096) () in
  let sw = Machine.create ~seed:"fig6" ~epc_bytes:(128 * 4096) () in
  Machine.set_software_mode sw;
  let run machine =
    let r =
      Microbench.sweep ~machine ~blob_bytes:512 ~rand_reads:100 ~wasm_factor:2.5
        Bench_db.Twine_rt Bench_db.Mem ~sizes:[ 1200 ] ()
    in
    (List.hd r.Microbench.points).Microbench.rand_read_ns
  in
  let hw_ns = run hw and sw_ns = run sw in
  Alcotest.(check bool)
    (Printf.sprintf "software mode (%d) faster than hardware (%d)" sw_ns hw_ns)
    true (sw_ns < hw_ns)

(* --- speedtest --- *)

let test_speedtest_complete () =
  Alcotest.(check int) "29 tests" 29 (List.length Speedtest.tests)

let test_speedtest_runs_all_variants () =
  List.iter
    (fun (variant, storage) ->
      let machine = Machine.create ~seed:"st" () in
      let results =
        Speedtest.run_suite ~machine ~wasm_factor:2.5 variant storage ~size:60 ()
      in
      Alcotest.(check int)
        (Bench_db.variant_name variant ^ "/" ^ Bench_db.storage_name storage)
        29 (List.length results);
      List.iter
        (fun (id, ns) ->
          Alcotest.(check bool) (Printf.sprintf "test %d took time" id) true (ns >= 0))
        results)
    [ (Bench_db.Native, Bench_db.Mem); (Bench_db.Wamr, Bench_db.Mem);
      (Bench_db.Sgx_lkl, Bench_db.File); (Bench_db.Twine_rt, Bench_db.File) ]

let test_wasm_factor_calibration () =
  let f = Bench_db.calibrate_wasm_factor () in
  Alcotest.(check bool) (Printf.sprintf "factor %.2f in sane range" f) true
    (f >= 1.5 && f < 200.)

let suite =
  [ ("runtime", [
      Alcotest.test_case "hello world" `Quick test_runtime_hello;
      Alcotest.test_case "interpreter engine" `Quick test_runtime_interpreter_engine;
      Alcotest.test_case "protected persistence" `Quick test_runtime_protected_persistence;
      Alcotest.test_case "attested deploy" `Quick test_attested_deploy_flow;
      Alcotest.test_case "rogue machine rejected" `Quick test_attested_deploy_rejects_rogue_machine;
      Alcotest.test_case "invalid module rejected" `Quick test_deploy_rejects_invalid_module;
    ]);
    ("variants", [
      Alcotest.test_case "native < wamr < twine" `Slow test_variant_ordering;
      Alcotest.test_case "file slower than mem" `Slow test_file_storage_slower_than_mem;
      Alcotest.test_case "EPC cliff" `Slow test_epc_cliff;
      Alcotest.test_case "fig7 breakdown" `Slow test_fig7_breakdown_shape;
      Alcotest.test_case "fig6 software mode" `Slow test_software_mode_faster;
    ]);
    ("speedtest", [
      Alcotest.test_case "29 tests" `Quick test_speedtest_complete;
      Alcotest.test_case "all variants run" `Slow test_speedtest_runs_all_variants;
      Alcotest.test_case "wasm factor calibration" `Slow test_wasm_factor_calibration;
    ]);
  ]

let () = Alcotest.run "twine_core" suite
