(* WASI preview1 tests: wire-level behaviour of the host functions
   (pointers into guest memory, errno codes), the capability sandbox, and
   an end-to-end WASI command. *)

open Twine_wasm
open Twine_wasm.Values
open Twine_wasi

let mem_module = Wat.parse {|(module (memory (export "memory") 2))|}

(* Create a ctx bound to a fresh memory; returns (ctx, memory, call)
   where [call name args] invokes the named WASI function. *)
let setup ?args ?env ?preopens ?providers () =
  let ctx = Api.create ?args ?env ?preopens ?providers () in
  let inst = Interp.instantiate ~imports:(Api.imports ctx) mem_module in
  Api.bind_memory ctx inst;
  let fns = Api.functions ctx in
  let call name vargs =
    match List.assoc_opt name fns with
    | Some f -> (
        match Interp.call_func f vargs with
        | [ I32 e ] -> Int32.to_int e
        | [] -> 0
        | _ -> Alcotest.fail "unexpected results")
    | None -> Alcotest.fail ("no such wasi function " ^ name)
  in
  (ctx, Api.memory ctx, call)

let i v = I32 (Int32.of_int v)
let l v = I64 (Int64.of_int v)

let check_errno = Alcotest.(check int)

(* Helper: write an iovec array at [iovs] pointing at (buf,len) pairs. *)
let put_iovs m iovs pairs =
  List.iteri
    (fun k (buf, len) ->
      Memory.store32 m (iovs + (8 * k)) (Int32.of_int buf);
      Memory.store32 m (iovs + (8 * k) + 4) (Int32.of_int len))
    pairs

let test_surface_complete () =
  let ctx, _, _ = setup () in
  (* the paper counts 45 functions in the WASI interface (§III-B) *)
  Alcotest.(check int) "45 functions" 45 (Api.function_count ctx)

let test_args () =
  let _, m, call = setup ~args:[ "prog"; "--fast"; "x" ] () in
  check_errno "sizes" 0 (call "args_sizes_get" [ i 100; i 104 ]);
  Alcotest.(check int32) "argc" 3l (Memory.load32 m 100);
  Alcotest.(check int32) "buf size" 14l (Memory.load32 m 104);
  check_errno "get" 0 (call "args_get" [ i 200; i 300 ]);
  Alcotest.(check string) "argv[0]" "prog" (Memory.load_cstring m (Int32.to_int (Memory.load32 m 200)));
  Alcotest.(check string) "argv[1]" "--fast" (Memory.load_cstring m (Int32.to_int (Memory.load32 m 204)));
  Alcotest.(check string) "argv[2]" "x" (Memory.load_cstring m (Int32.to_int (Memory.load32 m 208)))

let test_environ () =
  let _, m, call = setup ~env:[ ("HOME", "/"); ("MODE", "sgx") ] () in
  check_errno "sizes" 0 (call "environ_sizes_get" [ i 100; i 104 ]);
  Alcotest.(check int32) "count" 2l (Memory.load32 m 100);
  check_errno "get" 0 (call "environ_get" [ i 200; i 300 ]);
  Alcotest.(check string) "first" "HOME=/" (Memory.load_cstring m (Int32.to_int (Memory.load32 m 200)))

let test_clock_monotonic_guard () =
  (* a clock that goes backwards must be clamped by the provider *)
  let seq = ref [ 100L; 50L; 120L ] in
  let backwards () =
    match !seq with
    | [] -> 130L
    | x :: rest ->
        seq := rest;
        x
  in
  let last = ref 0L in
  let guarded () =
    let now = backwards () in
    if Int64.compare now !last > 0 then last := now;
    !last
  in
  let providers = { Api.default_providers with clock_monotonic = guarded } in
  let _, m, call = setup ~providers () in
  let read_time () =
    check_errno "time" 0 (call "clock_time_get" [ i 1; l 0; i 64 ]);
    Memory.load64 m 64
  in
  let t1 = read_time () in
  let t2 = read_time () in
  let t3 = read_time () in
  Alcotest.(check bool) "never decreases" true
    (Int64.compare t2 t1 >= 0 && Int64.compare t3 t2 >= 0)

let test_clock_bad_id () =
  let _, _, call = setup () in
  check_errno "bad clock" Errno.einval (call "clock_time_get" [ i 9; l 0; i 64 ])

let test_random_get () =
  let providers =
    { Api.default_providers with random = (fun n -> String.init n (fun k -> Char.chr (k land 0xff))) }
  in
  let _, m, call = setup ~providers () in
  check_errno "random" 0 (call "random_get" [ i 500; i 8 ]);
  Alcotest.(check string) "bytes written" "\x00\x01\x02\x03\x04\x05\x06\x07"
    (Memory.load_bytes m 500 8)

let test_fd_write_stdout () =
  let out = Buffer.create 16 in
  let providers = { Api.default_providers with stdout = Buffer.add_string out } in
  let _, m, call = setup ~providers () in
  Memory.store_bytes m 1000 "hello ";
  Memory.store_bytes m 1010 "world";
  put_iovs m 64 [ (1000, 6); (1010, 5) ];
  check_errno "write" 0 (call "fd_write" [ i 1; i 64; i 2; i 80 ]);
  Alcotest.(check int32) "nwritten" 11l (Memory.load32 m 80);
  Alcotest.(check string) "sink" "hello world" (Buffer.contents out)

let test_fd_badf () =
  let _, _, call = setup () in
  check_errno "write badf" Errno.ebadf (call "fd_write" [ i 77; i 64; i 0; i 80 ]);
  check_errno "close badf" Errno.ebadf (call "fd_close" [ i 77 ]);
  check_errno "seek badf" Errno.ebadf (call "fd_seek" [ i 77; l 0; i 0; i 80 ])

(* Open a file in the first preopen; returns the new fd. *)
let open_file m call ?(oflags = 1 (* CREAT *)) ?(rights = -1) name =
  Memory.store_bytes m 2000 name;
  let rights64 = if rights = -1 then I64 0x1fffffffL else l rights in
  let e =
    call "path_open"
      [ i 3; i 0; i 2000; i (String.length name); i oflags; rights64; I64 0L; i 0; i 2100 ]
  in
  check_errno ("open " ^ name) 0 e;
  Int32.to_int (Memory.load32 m 2100)

let test_file_roundtrip () =
  let preopens = [ (".", Vfs.memory ()) ] in
  let _, m, call = setup ~preopens () in
  let fd = open_file m call "data.txt" in
  Alcotest.(check bool) "fd >= 4" true (fd >= 4);
  Memory.store_bytes m 1000 "persistent content";
  put_iovs m 64 [ (1000, 18) ];
  check_errno "write" 0 (call "fd_write" [ i fd; i 64; i 1; i 80 ]);
  Alcotest.(check int32) "wrote all" 18l (Memory.load32 m 80);
  (* rewind and read back *)
  check_errno "seek" 0 (call "fd_seek" [ i fd; l 0; i 0; i 88 ]);
  put_iovs m 64 [ (3000, 100) ];
  check_errno "read" 0 (call "fd_read" [ i fd; i 64; i 1; i 80 ]);
  Alcotest.(check int32) "nread" 18l (Memory.load32 m 80);
  Alcotest.(check string) "content" "persistent content" (Memory.load_bytes m 3000 18);
  check_errno "close" 0 (call "fd_close" [ i fd ]);
  check_errno "double close" Errno.ebadf (call "fd_close" [ i fd ])

let test_vectored_read () =
  let preopens = [ (".", Vfs.memory ()) ] in
  let _, m, call = setup ~preopens () in
  let fd = open_file m call "v.txt" in
  Memory.store_bytes m 1000 "abcdefgh";
  put_iovs m 64 [ (1000, 8) ];
  check_errno "write" 0 (call "fd_write" [ i fd; i 64; i 1; i 80 ]);
  check_errno "seek" 0 (call "fd_seek" [ i fd; l 0; i 0; i 88 ]);
  (* read into two separate buffers *)
  put_iovs m 64 [ (3000, 3); (3100, 5) ];
  check_errno "read" 0 (call "fd_read" [ i fd; i 64; i 2; i 80 ]);
  Alcotest.(check int32) "total" 8l (Memory.load32 m 80);
  Alcotest.(check string) "first iov" "abc" (Memory.load_bytes m 3000 3);
  Alcotest.(check string) "second iov" "defgh" (Memory.load_bytes m 3100 5)

let test_pread_pwrite () =
  let preopens = [ (".", Vfs.memory ()) ] in
  let _, m, call = setup ~preopens () in
  let fd = open_file m call "p.txt" in
  Memory.store_bytes m 1000 "0123456789";
  put_iovs m 64 [ (1000, 10) ];
  check_errno "write" 0 (call "fd_write" [ i fd; i 64; i 1; i 80 ]);
  (* pwrite at 4 must not move the cursor *)
  Memory.store_bytes m 1100 "XY";
  put_iovs m 64 [ (1100, 2) ];
  check_errno "pwrite" 0 (call "fd_pwrite" [ i fd; i 64; i 1; l 4; i 80 ]);
  check_errno "tell" 0 (call "fd_tell" [ i fd; i 88 ]);
  Alcotest.(check int) "cursor unchanged" 10 (Int64.to_int (Memory.load64 m 88));
  put_iovs m 64 [ (3000, 4) ];
  check_errno "pread" 0 (call "fd_pread" [ i fd; i 64; i 1; l 3; i 80 ]);
  Alcotest.(check string) "pread window" "3XY6" (Memory.load_bytes m 3000 4)

let test_filestat_and_set_size () =
  let preopens = [ (".", Vfs.memory ()) ] in
  let _, m, call = setup ~preopens () in
  let fd = open_file m call "s.bin" in
  Memory.store_bytes m 1000 "123456";
  put_iovs m 64 [ (1000, 6) ];
  check_errno "write" 0 (call "fd_write" [ i fd; i 64; i 1; i 80 ]);
  check_errno "filestat" 0 (call "fd_filestat_get" [ i fd; i 400 ]);
  Alcotest.(check int) "size" 6 (Int64.to_int (Memory.load64 m 432));
  Alcotest.(check int32) "filetype regular" 4l (Memory.load8_u m 416);
  check_errno "truncate" 0 (call "fd_filestat_set_size" [ i fd; l 3 ]);
  check_errno "filestat2" 0 (call "fd_filestat_get" [ i fd; i 400 ]);
  Alcotest.(check int) "shrunk" 3 (Int64.to_int (Memory.load64 m 432));
  (* path_filestat_get through the directory *)
  Memory.store_bytes m 2000 "s.bin";
  check_errno "path stat" 0 (call "path_filestat_get" [ i 3; i 0; i 2000; i 5; i 400 ]);
  Alcotest.(check int) "path size" 3 (Int64.to_int (Memory.load64 m 432))

let test_prestat () =
  let preopens = [ ("/data", Vfs.memory ()) ] in
  let _, m, call = setup ~preopens () in
  check_errno "prestat" 0 (call "fd_prestat_get" [ i 3; i 100 ]);
  Alcotest.(check int32) "tag dir" 0l (Memory.load8_u m 100);
  Alcotest.(check int32) "name len" 5l (Memory.load32 m 104);
  check_errno "dir name" 0 (call "fd_prestat_dir_name" [ i 3; i 200; i 5 ]);
  Alcotest.(check string) "name" "/data" (Memory.load_bytes m 200 5);
  check_errno "too small" Errno.erange (call "fd_prestat_dir_name" [ i 3; i 200; i 2 ]);
  check_errno "not a preopen" Errno.ebadf (call "fd_prestat_get" [ i 1; i 100 ])

let test_sandbox_escape_rejected () =
  let preopens = [ (".", Vfs.memory ()) ] in
  let _, m, call = setup ~preopens () in
  let try_open name =
    Memory.store_bytes m 2000 name;
    call "path_open"
      [ i 3; i 0; i 2000; i (String.length name); i 1; I64 0x1fffffffL; I64 0L; i 0; i 2100 ]
  in
  check_errno "dotdot escape" Errno.enotcapable (try_open "../etc/passwd");
  check_errno "absolute" Errno.enotcapable (try_open "/etc/passwd");
  check_errno "sneaky traversal" Errno.enotcapable (try_open "a/../../b");
  check_errno "inner dotdot ok" 0 (try_open "a/../b")

let test_rights_enforced () =
  let preopens = [ (".", Vfs.memory ()) ] in
  let _, m, call = setup ~preopens () in
  (* open with read-only rights (bit 1) *)
  let fd = open_file m call ~rights:2 "ro.txt" in
  put_iovs m 64 [ (1000, 4) ];
  check_errno "write denied" Errno.enotcapable (call "fd_write" [ i fd; i 64; i 1; i 80 ]);
  check_errno "read allowed" 0 (call "fd_read" [ i fd; i 64; i 1; i 80 ]);
  (* rights can only shrink *)
  check_errno "grow rights denied" Errno.enotcapable
    (call "fd_fdstat_set_rights" [ i fd; I64 0xffL; I64 0L ]);
  check_errno "shrink ok" 0 (call "fd_fdstat_set_rights" [ i fd; I64 2L; I64 0L ])

let test_unlink_rename () =
  let preopens = [ (".", Vfs.memory ()) ] in
  let _, m, call = setup ~preopens () in
  let fd = open_file m call "old.txt" in
  check_errno "close" 0 (call "fd_close" [ i fd ]);
  Memory.store_bytes m 2000 "old.txt";
  Memory.store_bytes m 2200 "new.txt";
  check_errno "rename" 0 (call "path_rename" [ i 3; i 2000; i 7; i 3; i 2200; i 7 ]);
  check_errno "stat old gone" Errno.enoent
    (call "path_filestat_get" [ i 3; i 0; i 2000; i 7; i 400 ]);
  check_errno "unlink new" 0 (call "path_unlink_file" [ i 3; i 2200; i 7 ]);
  check_errno "unlink again" Errno.enoent (call "path_unlink_file" [ i 3; i 2200; i 7 ])

let test_directories () =
  let preopens = [ (".", Vfs.memory ()) ] in
  let _, m, call = setup ~preopens () in
  Memory.store_bytes m 2000 "subdir";
  check_errno "mkdir" 0 (call "path_create_directory" [ i 3; i 2000; i 6 ]);
  check_errno "mkdir again" Errno.eexist (call "path_create_directory" [ i 3; i 2000; i 6 ]);
  let fd = open_file m call "subdir/file.txt" in
  check_errno "close" 0 (call "fd_close" [ i fd ]);
  check_errno "rmdir nonempty" Errno.enotempty
    (call "path_remove_directory" [ i 3; i 2000; i 6 ]);
  Memory.store_bytes m 2100 "subdir/file.txt";
  check_errno "unlink inner" 0 (call "path_unlink_file" [ i 3; i 2100; i 15 ]);
  check_errno "rmdir" 0 (call "path_remove_directory" [ i 3; i 2000; i 6 ])

let test_readdir () =
  let preopens = [ (".", Vfs.memory ()) ] in
  let _, m, call = setup ~preopens () in
  List.iter
    (fun name ->
      let fd = open_file m call name in
      ignore (call "fd_close" [ i fd ]))
    [ "a.txt"; "b.txt" ];
  check_errno "readdir" 0 (call "fd_readdir" [ i 3; i 4000; i 512; l 0; i 96 ]);
  let used = Int32.to_int (Memory.load32 m 96) in
  Alcotest.(check int) "two entries" (24 + 5 + 24 + 5) used;
  Alcotest.(check string) "first name" "a.txt" (Memory.load_bytes m (4000 + 24) 5)

let test_renumber () =
  let preopens = [ (".", Vfs.memory ()) ] in
  let _, m, call = setup ~preopens () in
  let fd = open_file m call "r.txt" in
  check_errno "renumber" 0 (call "fd_renumber" [ i fd; i 9 ]);
  check_errno "old gone" Errno.ebadf (call "fd_tell" [ i fd; i 88 ]);
  check_errno "new works" 0 (call "fd_tell" [ i 9; i 88 ])

let test_sockets_unsupported () =
  let _, _, call = setup () in
  check_errno "sock_recv" Errno.enotsup (call "sock_recv" [ i 4; i 0; i 0; i 0; i 0; i 0 ]);
  check_errno "sock_send" Errno.enotsup (call "sock_send" [ i 4; i 0; i 0; i 0; i 0 ]);
  check_errno "sock_shutdown" Errno.enotsup (call "sock_shutdown" [ i 4; i 0 ]);
  check_errno "path_link" Errno.enosys
    (call "path_link" [ i 3; i 0; i 0; i 0; i 3; i 0; i 0 ])

let test_on_call_hook () =
  let calls = ref [] in
  let providers =
    { Api.default_providers with on_call = (fun name -> calls := name :: !calls) }
  in
  let _, _, call = setup ~providers () in
  ignore (call "sched_yield" []);
  ignore (call "clock_res_get" [ i 1; i 64 ]);
  Alcotest.(check (list string)) "hook saw calls" [ "clock_res_get"; "sched_yield" ] !calls

(* --- end-to-end WASI command --- *)

let hello_wat =
  {|(module
      (import "wasi_snapshot_preview1" "fd_write"
        (func $fd_write (param i32 i32 i32 i32) (result i32)))
      (import "wasi_snapshot_preview1" "proc_exit"
        (func $proc_exit (param i32)))
      (memory (export "memory") 1)
      (data (i32.const 100) "hello from wasi\n")
      (func (export "_start")
        ;; iov at 8: base=100 len=16
        (i32.store (i32.const 8) (i32.const 100))
        (i32.store (i32.const 12) (i32.const 16))
        (drop (call $fd_write (i32.const 1) (i32.const 8) (i32.const 1) (i32.const 20)))
        (call $proc_exit (i32.const 7))))|}

let test_run_command () =
  let out = Buffer.create 16 in
  let providers = { Api.default_providers with stdout = Buffer.add_string out } in
  let ctx = Api.create ~providers () in
  let code = Api.run_command ctx (Wat.parse hello_wat) in
  Alcotest.(check int) "exit code" 7 code;
  Alcotest.(check string) "stdout" "hello from wasi\n" (Buffer.contents out);
  Alcotest.(check (option int)) "exit recorded" (Some 7) (Api.exit_code ctx)

let suite =
  [ ("surface", [ Alcotest.test_case "45 functions" `Quick test_surface_complete ]);
    ("process", [
      Alcotest.test_case "args" `Quick test_args;
      Alcotest.test_case "environ" `Quick test_environ;
      Alcotest.test_case "monotonic clock guard" `Quick test_clock_monotonic_guard;
      Alcotest.test_case "bad clock id" `Quick test_clock_bad_id;
      Alcotest.test_case "random_get" `Quick test_random_get;
      Alcotest.test_case "on_call hook" `Quick test_on_call_hook;
    ]);
    ("fd", [
      Alcotest.test_case "stdout write" `Quick test_fd_write_stdout;
      Alcotest.test_case "bad fd" `Quick test_fd_badf;
      Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
      Alcotest.test_case "vectored read" `Quick test_vectored_read;
      Alcotest.test_case "pread/pwrite" `Quick test_pread_pwrite;
      Alcotest.test_case "filestat/set_size" `Quick test_filestat_and_set_size;
      Alcotest.test_case "renumber" `Quick test_renumber;
      Alcotest.test_case "readdir" `Quick test_readdir;
    ]);
    ("sandbox", [
      Alcotest.test_case "prestat" `Quick test_prestat;
      Alcotest.test_case "escape rejected" `Quick test_sandbox_escape_rejected;
      Alcotest.test_case "rights enforced" `Quick test_rights_enforced;
    ]);
    ("paths", [
      Alcotest.test_case "unlink/rename" `Quick test_unlink_rename;
      Alcotest.test_case "directories" `Quick test_directories;
      Alcotest.test_case "sockets/links unsupported" `Quick test_sockets_unsupported;
    ]);
    ("command", [ Alcotest.test_case "hello world" `Quick test_run_command ]);
  ]

let () = Alcotest.run "twine_wasi" suite
