(* WebAssembly engine tests: numerics, control flow, memory, linking,
   interpreter-vs-AoT agreement, and (later sections) text/binary codecs
   and the validator. *)

open Twine_wasm
open Twine_wasm.Ast
open Twine_wasm.Values
module B = Builder

let value = Alcotest.testable (Fmt.of_to_string Values.to_string) ( = )

(* Build a module with one exported function "f". *)
let mk_func ~params ~results ~locals body =
  let b = B.create () in
  ignore (B.add_func b ~name:"f" ~params ~results ~locals body);
  B.build b

let run_both ?(aot_only = false) m name args =
  let i1 = Interp.instantiate m in
  let r_interp = Interp.invoke i1 name args in
  let i2 = Interp.instantiate m in
  ignore (Aot.compile_instance i2);
  let r_aot = Interp.invoke i2 name args in
  if not aot_only then
    Alcotest.(check (list value)) "interp = aot" r_interp r_aot;
  r_interp

(* --- arithmetic --- *)

let test_i32_arith () =
  let m =
    mk_func ~params:[ Types.I32; Types.I32 ] ~results:[ Types.I32 ] ~locals:[]
      [ Local_get 0; Local_get 1; I32_binop Add; Local_get 0; I32_binop Mul ]
  in
  Alcotest.(check (list value)) "(a+b)*a" [ I32 30l ]
    (run_both m "f" [ I32 5l; I32 1l ])

let test_i32_div_semantics () =
  let div op a b =
    let m =
      mk_func ~params:[ Types.I32; Types.I32 ] ~results:[ Types.I32 ] ~locals:[]
        [ Local_get 0; Local_get 1; I32_binop op ]
    in
    run_both m "f" [ I32 a; I32 b ]
  in
  Alcotest.(check (list value)) "-7/2 truncates" [ I32 (-3l) ] (div Div_s (-7l) 2l);
  Alcotest.(check (list value)) "unsigned div" [ I32 2147483644l ]
    (div Div_u (-7l) 2l);
  Alcotest.(check (list value)) "rem_s sign" [ I32 (-1l) ] (div Rem_s (-7l) 2l);
  Alcotest.check_raises "div by zero" (Trap "integer divide by zero") (fun () ->
      ignore (div Div_s 1l 0l));
  Alcotest.check_raises "min/-1 overflow" (Trap "integer overflow") (fun () ->
      ignore (div Div_s Int32.min_int (-1l)))

let test_i32_bitops () =
  let un op v =
    let m =
      mk_func ~params:[ Types.I32 ] ~results:[ Types.I32 ] ~locals:[]
        [ Local_get 0; I32_unop op ]
    in
    match run_both m "f" [ I32 v ] with [ I32 r ] -> r | _ -> assert false
  in
  Alcotest.(check int32) "clz 1" 31l (un Clz 1l);
  Alcotest.(check int32) "clz 0" 32l (un Clz 0l);
  Alcotest.(check int32) "ctz 8" 3l (un Ctz 8l);
  Alcotest.(check int32) "popcnt" 8l (un Popcnt 0xff000000l)

let test_i32_rotations () =
  let bin op a b =
    let m =
      mk_func ~params:[ Types.I32; Types.I32 ] ~results:[ Types.I32 ] ~locals:[]
        [ Local_get 0; Local_get 1; I32_binop op ]
    in
    match run_both m "f" [ I32 a; I32 b ] with [ I32 r ] -> r | _ -> assert false
  in
  Alcotest.(check int32) "rotl" 0x00000003l (bin Rotl 0x80000001l 1l);
  Alcotest.(check int32) "rotr" 0xc0000000l (bin Rotr 0x80000001l 1l);
  Alcotest.(check int32) "shr_u" 0x40000000l (bin Shr_u Int32.min_int 1l);
  Alcotest.(check int32) "shr_s" 0xc0000000l (bin Shr_s Int32.min_int 1l);
  Alcotest.(check int32) "shift masks to 5 bits" 2l (bin Shl 1l 33l)

let test_i64_arith () =
  let m =
    mk_func ~params:[ Types.I64; Types.I64 ] ~results:[ Types.I64 ] ~locals:[]
      [ Local_get 0; Local_get 1; I64_binop Mul ]
  in
  Alcotest.(check (list value)) "i64 mul" [ I64 49_000_000_000_000L ]
    (run_both m "f" [ I64 7_000_000L; I64 7_000_000L ])

let test_f64_arith () =
  let m =
    mk_func ~params:[ Types.F64; Types.F64 ] ~results:[ Types.F64 ] ~locals:[]
      [ Local_get 0; Local_get 1; F64_binop Fdiv; F64_unop Sqrt ]
  in
  Alcotest.(check (list value)) "sqrt(a/b)" [ F64 3. ]
    (run_both m "f" [ F64 18.; F64 2. ])

let test_f32_rounding () =
  (* f32 arithmetic must round to 32-bit precision: 1 + 2^-30 = 1 in f32 *)
  let m =
    mk_func ~params:[ Types.F32; Types.F32 ] ~results:[ Types.F32 ] ~locals:[]
      [ Local_get 0; Local_get 1; F32_binop Fadd ]
  in
  Alcotest.(check (list value)) "f32 precision" [ F32 1. ]
    (run_both m "f" [ F32 1.; F32 (Int32.float_of_bits 0x30800000l) ])

let test_float_nearest_even () =
  let near v =
    let m =
      mk_func ~params:[ Types.F64 ] ~results:[ Types.F64 ] ~locals:[]
        [ Local_get 0; F64_unop Nearest ]
    in
    match run_both m "f" [ F64 v ] with [ F64 r ] -> r | _ -> assert false
  in
  Alcotest.(check (float 0.)) "2.5 -> 2" 2. (near 2.5);
  Alcotest.(check (float 0.)) "3.5 -> 4" 4. (near 3.5);
  Alcotest.(check (float 0.)) "-0.5 -> -0" 0. (near (-0.5));
  Alcotest.(check (float 0.)) "0.7 -> 1" 1. (near 0.7)

let test_trunc_traps () =
  let m =
    mk_func ~params:[ Types.F64 ] ~results:[ Types.I32 ] ~locals:[]
      [ Local_get 0; Cvt I32_trunc_f64_s ]
  in
  Alcotest.(check (list value)) "in range" [ I32 (-3l) ] (run_both m "f" [ F64 (-3.9) ]);
  Alcotest.check_raises "nan traps" (Trap "invalid conversion to integer") (fun () ->
      ignore (run_both m "f" [ F64 Float.nan ]));
  Alcotest.check_raises "overflow traps" (Trap "integer overflow") (fun () ->
      ignore (run_both m "f" [ F64 3e9 ]))

let test_conversions () =
  let cvt op v =
    let vt = Values.type_of v in
    let rt =
      match op with
      | I32_wrap_i64 | I32_reinterpret_f32 -> Types.I32
      | I64_extend_i32_u | I64_extend_i32_s -> Types.I64
      | F64_convert_i64_u | F64_convert_i32_u -> Types.F64
      | F32_demote_f64 -> Types.F32
      | _ -> Types.F64
    in
    let m = mk_func ~params:[ vt ] ~results:[ rt ] ~locals:[] [ Local_get 0; Cvt op ] in
    List.hd (run_both m "f" [ v ])
  in
  Alcotest.check value "wrap" (I32 (-1l)) (cvt I32_wrap_i64 (I64 0xffffffffL));
  Alcotest.check value "extend_u" (I64 0xffffffffL) (cvt I64_extend_i32_u (I32 (-1l)));
  Alcotest.check value "extend_s" (I64 (-1L)) (cvt I64_extend_i32_s (I32 (-1l)));
  Alcotest.check value "convert u32" (F64 4294967295.) (cvt F64_convert_i32_u (I32 (-1l)));
  Alcotest.check value "convert u64" (F64 1.8446744073709552e19)
    (cvt F64_convert_i64_u (I64 (-1L)))

let test_sign_extension_ops () =
  let m =
    mk_func ~params:[ Types.I32 ] ~results:[ Types.I32 ] ~locals:[]
      [ Local_get 0; Cvt I32_extend8_s ]
  in
  Alcotest.(check (list value)) "extend8_s" [ I32 (-1l) ] (run_both m "f" [ I32 0xffl ])

(* --- control flow --- *)

let test_factorial_loop () =
  (* local 1 = acc; while local0 > 1 { acc *= local0; local0-- } *)
  let m =
    mk_func ~params:[ Types.I32 ] ~results:[ Types.I32 ] ~locals:[ Types.I32 ]
      [ I32_const 1l; Local_set 1;
        Block (None, [
          Loop (None, [
            Local_get 0; I32_const 1l; I32_relop Le_s; Br_if 1;
            Local_get 1; Local_get 0; I32_binop Mul; Local_set 1;
            Local_get 0; I32_const 1l; I32_binop Sub; Local_set 0;
            Br 0 ]) ]);
        Local_get 1 ]
  in
  Alcotest.(check (list value)) "10!" [ I32 3628800l ] (run_both m "f" [ I32 10l ])

let test_recursive_fib () =
  let b = B.create () in
  let fib =
    B.add_func b ~name:"fib" ~params:[ Types.I32 ] ~results:[ Types.I32 ] ~locals:[]
      [ Local_get 0; I32_const 2l; I32_relop Lt_s;
        If (Some Types.I32,
            [ Local_get 0 ],
            [ Local_get 0; I32_const 1l; I32_binop Sub; Call 0;
              Local_get 0; I32_const 2l; I32_binop Sub; Call 0;
              I32_binop Add ]) ]
  in
  ignore fib;
  let m = B.build b in
  Alcotest.(check (list value)) "fib 15" [ I32 610l ] (run_both m "fib" [ I32 15l ])

let test_block_result_br () =
  (* br with a value out of a block *)
  let m =
    mk_func ~params:[ Types.I32 ] ~results:[ Types.I32 ] ~locals:[]
      [ Block (Some Types.I32,
          [ Local_get 0;
            Local_get 0; I32_const 0l; I32_relop Gt_s;
            Br_if 0;
            Drop; I32_const 42l ]) ]
  in
  Alcotest.(check (list value)) "positive passes through" [ I32 7l ]
    (run_both m "f" [ I32 7l ]);
  Alcotest.(check (list value)) "non-positive replaced" [ I32 42l ]
    (run_both m "f" [ I32 (-3l) ])

let test_br_table () =
  let m =
    mk_func ~params:[ Types.I32 ] ~results:[ Types.I32 ] ~locals:[]
      [ Block (None, [
          Block (None, [
            Block (None, [ Local_get 0; Br_table ([ 0; 1 ], 2) ]);
            (* case 0 *) I32_const 100l; Return ]);
          (* case 1 *) I32_const 200l; Return ]);
        (* default *) I32_const 300l ]
  in
  Alcotest.(check (list value)) "case 0" [ I32 100l ] (run_both m "f" [ I32 0l ]);
  Alcotest.(check (list value)) "case 1" [ I32 200l ] (run_both m "f" [ I32 1l ]);
  Alcotest.(check (list value)) "default" [ I32 300l ] (run_both m "f" [ I32 9l ]);
  Alcotest.(check (list value)) "negative -> default" [ I32 300l ]
    (run_both m "f" [ I32 (-1l) ])

let test_select_and_eqz () =
  let m =
    mk_func ~params:[ Types.I32 ] ~results:[ Types.I32 ] ~locals:[]
      [ I32_const 11l; I32_const 22l; Local_get 0; I32_eqz; Select ]
  in
  Alcotest.(check (list value)) "zero selects first" [ I32 11l ]
    (run_both m "f" [ I32 0l ]);
  Alcotest.(check (list value)) "nonzero selects second" [ I32 22l ]
    (run_both m "f" [ I32 5l ])

let test_unreachable () =
  let m = mk_func ~params:[] ~results:[] ~locals:[] [ Unreachable ] in
  Alcotest.check_raises "traps" (Trap "unreachable executed") (fun () ->
      ignore (run_both m "f" []))

let test_early_return () =
  let m =
    mk_func ~params:[ Types.I32 ] ~results:[ Types.I32 ] ~locals:[]
      [ Local_get 0;
        If (None, [ I32_const 1l; Return ], []);
        I32_const 0l ]
  in
  Alcotest.(check (list value)) "taken" [ I32 1l ] (run_both m "f" [ I32 1l ]);
  Alcotest.(check (list value)) "fallthrough" [ I32 0l ] (run_both m "f" [ I32 0l ])

(* --- memory --- *)

let test_memory_load_store () =
  let b = B.create () in
  B.add_memory b 1;
  ignore
    (B.add_func b ~name:"f" ~params:[ Types.I32; Types.I32 ] ~results:[ Types.I32 ]
       ~locals:[]
       [ Local_get 0; Local_get 1; I32_store { offset = 0; align = 2 };
         Local_get 0; I32_load { offset = 0; align = 2 } ]);
  let m = B.build b in
  Alcotest.(check (list value)) "store/load" [ I32 987654321l ]
    (run_both m "f" [ I32 64l; I32 987654321l ])

let test_memory_widths_and_offsets () =
  let b = B.create () in
  B.add_memory b 1;
  ignore
    (B.add_func b ~name:"f" ~params:[] ~results:[ Types.I32 ] ~locals:[]
       [ (* store -2 as a byte at 10, read back sign- and zero-extended *)
         B.i32 10; B.i32 (-2); I32_store8 { offset = 0; align = 0 };
         B.i32 10; I32_load8_s { offset = 0; align = 0 };
         B.i32 10; I32_load8_u { offset = 0; align = 0 };
         I32_binop Add ]);
  let m = B.build b in
  (* -2 + 254 = 252 *)
  Alcotest.(check (list value)) "sign vs zero extension" [ I32 252l ]
    (run_both m "f" [])

let test_memory_data_segment () =
  let b = B.create () in
  B.add_memory b 1;
  B.add_data b ~offset:100 "\x2a\x00\x00\x00";
  ignore
    (B.add_func b ~name:"f" ~params:[] ~results:[ Types.I32 ] ~locals:[]
       [ B.i32 100; I32_load { offset = 0; align = 2 } ]);
  Alcotest.(check (list value)) "data initialised" [ I32 42l ]
    (run_both (B.build b) "f" [])

let test_memory_oob_traps () =
  let b = B.create () in
  B.add_memory b 1;
  ignore
    (B.add_func b ~name:"f" ~params:[ Types.I32 ] ~results:[ Types.I32 ] ~locals:[]
       [ Local_get 0; I32_load { offset = 0; align = 2 } ]);
  let m = B.build b in
  Alcotest.check_raises "oob" (Trap "out of bounds memory access") (fun () ->
      ignore (run_both m "f" [ I32 65533l ]));
  Alcotest.(check (list value)) "last word ok" [ I32 0l ]
    (run_both m "f" [ I32 65532l ])

let test_memory_grow_and_size () =
  let b = B.create () in
  B.add_memory b ~max:3 1;
  ignore
    (B.add_func b ~name:"f" ~params:[ Types.I32 ] ~results:[ Types.I32 ] ~locals:[]
       [ Local_get 0; Memory_grow; Drop; Memory_size ]);
  let m = B.build b in
  Alcotest.(check (list value)) "grow by 1" [ I32 2l ] (run_both m "f" [ I32 1l ]);
  (* growth beyond max returns -1 from memory.grow and size is unchanged *)
  let b2 = B.create () in
  B.add_memory b2 ~max:2 1;
  ignore
    (B.add_func b2 ~name:"f" ~params:[] ~results:[ Types.I32 ] ~locals:[]
       [ B.i32 5; Memory_grow ]);
  Alcotest.(check (list value)) "grow fails" [ I32 (-1l) ] (run_both (B.build b2) "f" [])

(* --- globals --- *)

let test_globals () =
  let b = B.create () in
  let g = B.add_global b ~mut:Types.Var Types.I32 [ B.i32 10 ] in
  ignore
    (B.add_func b ~name:"bump" ~params:[] ~results:[ Types.I32 ] ~locals:[]
       [ Global_get g; B.i32 1; I32_binop Add; Global_set g; Global_get g ]);
  let m = B.build b in
  let inst = Interp.instantiate m in
  Alcotest.(check (list value)) "11" [ I32 11l ] (Interp.invoke inst "bump" []);
  Alcotest.(check (list value)) "12" [ I32 12l ] (Interp.invoke inst "bump" [])

let test_immutable_global_set_traps () =
  let b = B.create () in
  let g = B.add_global b ~mut:Types.Const Types.I32 [ B.i32 1 ] in
  ignore
    (B.add_func b ~name:"f" ~params:[] ~results:[] ~locals:[]
       [ B.i32 2; Global_set g ]);
  Alcotest.check_raises "immutable" (Trap "assignment to immutable global") (fun () ->
      ignore (run_both (B.build b) "f" []))

(* --- tables / call_indirect --- *)

let test_call_indirect () =
  let b = B.create () in
  B.add_table b 4;
  let add1 =
    B.add_func b ~params:[ Types.I32 ] ~results:[ Types.I32 ] ~locals:[]
      [ Local_get 0; B.i32 1; I32_binop Add ]
  in
  let dbl =
    B.add_func b ~params:[ Types.I32 ] ~results:[ Types.I32 ] ~locals:[]
      [ Local_get 0; B.i32 2; I32_binop Mul ]
  in
  B.add_elem b ~offset:0 [ add1; dbl ];
  let ti = B.add_type b ~params:[ Types.I32 ] ~results:[ Types.I32 ] in
  ignore
    (B.add_func b ~name:"dispatch" ~params:[ Types.I32; Types.I32 ]
       ~results:[ Types.I32 ] ~locals:[]
       [ Local_get 1; Local_get 0; Call_indirect ti ]);
  let m = B.build b in
  Alcotest.(check (list value)) "slot 0" [ I32 8l ]
    (run_both m "dispatch" [ I32 0l; I32 7l ]);
  Alcotest.(check (list value)) "slot 1" [ I32 14l ]
    (run_both m "dispatch" [ I32 1l; I32 7l ]);
  Alcotest.check_raises "uninitialised" (Trap "uninitialized element") (fun () ->
      ignore (run_both m "dispatch" [ I32 3l; I32 7l ]));
  Alcotest.check_raises "out of range" (Trap "undefined element") (fun () ->
      ignore (run_both m "dispatch" [ I32 99l; I32 7l ]))

(* --- imports / host functions --- *)

let test_host_function_import () =
  let b = B.create () in
  let logf =
    B.import_func b ~module_:"env" ~name:"add_host" ~params:[ Types.I32; Types.I32 ]
      ~results:[ Types.I32 ]
  in
  ignore
    (B.add_func b ~name:"f" ~params:[] ~results:[ Types.I32 ] ~locals:[]
       [ B.i32 20; B.i32 22; Call logf ]);
  let m = B.build b in
  let host =
    Instance.host_func ~name:"add_host"
      { Types.params = [ Types.I32; Types.I32 ]; results = [ Types.I32 ] }
      (function
        | [ I32 a; I32 b ] -> [ I32 (Int32.add a b) ]
        | _ -> assert false)
  in
  let inst =
    Interp.instantiate ~imports:[ ("env", "add_host", Instance.Extern_func host) ] m
  in
  Alcotest.(check (list value)) "host add" [ I32 42l ] (Interp.invoke inst "f" [])

let test_missing_import_fails () =
  let b = B.create () in
  ignore (B.import_func b ~module_:"env" ~name:"gone" ~params:[] ~results:[]);
  ignore (B.add_func b ~name:"f" ~params:[] ~results:[] ~locals:[] [ Nop ]);
  Alcotest.(check bool) "link error" true
    (try
       ignore (Interp.instantiate (B.build b));
       false
     with Instance.Link_error _ -> true)

let test_import_type_mismatch () =
  let b = B.create () in
  ignore (B.import_func b ~module_:"env" ~name:"h" ~params:[ Types.I32 ] ~results:[]);
  ignore (B.add_func b ~name:"f" ~params:[] ~results:[] ~locals:[] [ Nop ]);
  let host =
    Instance.host_func ~name:"h" { Types.params = []; results = [] } (fun _ -> [])
  in
  Alcotest.(check bool) "type mismatch" true
    (try
       ignore
         (Interp.instantiate ~imports:[ ("env", "h", Instance.Extern_func host) ]
            (B.build b));
       false
     with Instance.Link_error _ -> true)

let test_start_function () =
  let b = B.create () in
  let g = B.add_global b ~export:"g" ~mut:Types.Var Types.I32 [ B.i32 0 ] in
  let init =
    B.add_func b ~params:[] ~results:[] ~locals:[] [ B.i32 99; Global_set g ]
  in
  B.set_start b init;
  let inst = Interp.instantiate (B.build b) in
  match Instance.export_global inst "g" with
  | Some gi -> Alcotest.check value "start ran" (I32 99l) gi.Instance.g_value
  | None -> Alcotest.fail "no global"

(* --- builder for_ helper + metering --- *)

let test_builder_for_nested () =
  (* sum_{i<10} sum_{j<10} (i*j) = 2025 *)
  let b = B.create () in
  ignore
    (B.add_func b ~name:"f" ~params:[] ~results:[ Types.I32 ]
       ~locals:[ Types.I32; Types.I32; Types.I32 ]
       (B.for_ ~local:0 ~start:[ B.i32 0 ] ~bound:[ B.i32 10 ]
          (B.for_ ~local:1 ~start:[ B.i32 0 ] ~bound:[ B.i32 10 ]
             [ Local_get 2; Local_get 0; Local_get 1; I32_binop Mul; I32_binop Add;
               Local_set 2 ])
        @ [ Local_get 2 ]));
  Alcotest.(check (list value)) "nested loops" [ I32 2025l ] (run_both (B.build b) "f" [])

let test_fuel_metering () =
  let m =
    mk_func ~params:[] ~results:[ Types.I32 ] ~locals:[] [ I32_const 1l; I32_const 2l; I32_binop Add ]
  in
  let inst = Interp.instantiate m in
  ignore (Interp.invoke inst "f" []);
  Alcotest.(check int) "3 instructions executed" 3 (Interp.fuel_used inst)

let suite_core =
  [ ("numeric", [
      Alcotest.test_case "i32 arithmetic" `Quick test_i32_arith;
      Alcotest.test_case "i32 division" `Quick test_i32_div_semantics;
      Alcotest.test_case "i32 bitops" `Quick test_i32_bitops;
      Alcotest.test_case "i32 rotations/shifts" `Quick test_i32_rotations;
      Alcotest.test_case "i64 arithmetic" `Quick test_i64_arith;
      Alcotest.test_case "f64 arithmetic" `Quick test_f64_arith;
      Alcotest.test_case "f32 rounding" `Quick test_f32_rounding;
      Alcotest.test_case "nearest ties-to-even" `Quick test_float_nearest_even;
      Alcotest.test_case "trunc traps" `Quick test_trunc_traps;
      Alcotest.test_case "conversions" `Quick test_conversions;
      Alcotest.test_case "sign-extension ops" `Quick test_sign_extension_ops;
    ]);
    ("control", [
      Alcotest.test_case "factorial loop" `Quick test_factorial_loop;
      Alcotest.test_case "recursive fib" `Quick test_recursive_fib;
      Alcotest.test_case "br with value" `Quick test_block_result_br;
      Alcotest.test_case "br_table" `Quick test_br_table;
      Alcotest.test_case "select/eqz" `Quick test_select_and_eqz;
      Alcotest.test_case "unreachable" `Quick test_unreachable;
      Alcotest.test_case "early return" `Quick test_early_return;
    ]);
    ("memory", [
      Alcotest.test_case "load/store" `Quick test_memory_load_store;
      Alcotest.test_case "widths+extension" `Quick test_memory_widths_and_offsets;
      Alcotest.test_case "data segment" `Quick test_memory_data_segment;
      Alcotest.test_case "oob traps" `Quick test_memory_oob_traps;
      Alcotest.test_case "grow/size" `Quick test_memory_grow_and_size;
    ]);
    ("module", [
      Alcotest.test_case "globals" `Quick test_globals;
      Alcotest.test_case "immutable global" `Quick test_immutable_global_set_traps;
      Alcotest.test_case "call_indirect" `Quick test_call_indirect;
      Alcotest.test_case "host import" `Quick test_host_function_import;
      Alcotest.test_case "missing import" `Quick test_missing_import_fails;
      Alcotest.test_case "import type mismatch" `Quick test_import_type_mismatch;
      Alcotest.test_case "start function" `Quick test_start_function;
      Alcotest.test_case "builder nested for" `Quick test_builder_for_nested;
      Alcotest.test_case "fuel metering" `Quick test_fuel_metering;
    ]);
  ]

(* --- WAT text format --- *)

let wat_invoke src name args =
  let inst = Interp.instantiate (Wat.parse src) in
  Interp.invoke inst name args

let test_wat_folded () =
  let r =
    wat_invoke
      {|(module
          (func (export "add") (param $a i32) (param $b i32) (result i32)
            (i32.add (local.get $a) (local.get $b))))|}
      "add" [ I32 2l; I32 40l ]
  in
  Alcotest.(check (list value)) "folded add" [ I32 42l ] r

let test_wat_flat_loop () =
  let src =
    {|(module
        (func (export "sum") (param $n i32) (result i32)
          (local $acc i32)
          block $exit
            loop $top
              local.get $n
              i32.eqz
              br_if $exit
              local.get $acc
              local.get $n
              i32.add
              local.set $acc
              local.get $n
              i32.const 1
              i32.sub
              local.set $n
              br $top
            end
          end
          local.get $acc))|}
  in
  Alcotest.(check (list value)) "sum 1..10" [ I32 55l ]
    (wat_invoke src "sum" [ I32 10l ])

let test_wat_memory_data () =
  let src =
    {|(module
        (memory (export "mem") 1)
        (data (i32.const 8) "\2a\00\00\00")
        (func (export "get") (result i32)
          (i32.load (i32.const 8))))|}
  in
  Alcotest.(check (list value)) "data + load" [ I32 42l ] (wat_invoke src "get" [])

let test_wat_globals_and_if () =
  let src =
    {|(module
        (global $g (mut i32) (i32.const 10))
        (func (export "step") (param $x i32) (result i32)
          (if (result i32) (i32.gt_s (local.get $x) (i32.const 0))
            (then (global.get $g))
            (else (i32.const -1)))))|}
  in
  Alcotest.(check (list value)) "then" [ I32 10l ] (wat_invoke src "step" [ I32 5l ]);
  Alcotest.(check (list value)) "else" [ I32 (-1l) ] (wat_invoke src "step" [ I32 0l ])

let test_wat_call_named () =
  let src =
    {|(module
        (func $double (param i32) (result i32)
          (i32.mul (local.get 0) (i32.const 2)))
        (func (export "quad") (param i32) (result i32)
          (call $double (call $double (local.get 0)))))|}
  in
  Alcotest.(check (list value)) "quad" [ I32 44l ] (wat_invoke src "quad" [ I32 11l ])

let test_wat_import () =
  let src =
    {|(module
        (import "env" "mul" (func $mul (param i32 i32) (result i32)))
        (func (export "sq") (param i32) (result i32)
          (call $mul (local.get 0) (local.get 0))))|}
  in
  let host =
    Instance.host_func ~name:"mul"
      { Types.params = [ Types.I32; Types.I32 ]; results = [ Types.I32 ] }
      (function [ I32 a; I32 b ] -> [ I32 (Int32.mul a b) ] | _ -> assert false)
  in
  let inst =
    Interp.instantiate
      ~imports:[ ("env", "mul", Instance.Extern_func host) ]
      (Wat.parse src)
  in
  Alcotest.(check (list value)) "sq" [ I32 49l ] (Interp.invoke inst "sq" [ I32 7l ])

let test_wat_export_field () =
  let src =
    {|(module
        (func $hidden (result i32) (i32.const 5))
        (export "visible" (func $hidden)))|}
  in
  Alcotest.(check (list value)) "separate export field" [ I32 5l ]
    (wat_invoke src "visible" [])

let test_wat_comments_and_hex () =
  let src =
    {|(module ;; line comment
        (; block (; nested ;) comment ;)
        (func (export "f") (result i32)
          (i32.and (i32.const 0xff) (i32.const 0x3c))))|}
  in
  Alcotest.(check (list value)) "hex + comments" [ I32 0x3cl ] (wat_invoke src "f" [])

let test_wat_f64 () =
  let src =
    {|(module
        (func (export "hyp") (param f64 f64) (result f64)
          (f64.sqrt (f64.add
            (f64.mul (local.get 0) (local.get 0))
            (f64.mul (local.get 1) (local.get 1))))))|}
  in
  Alcotest.(check (list value)) "3-4-5" [ F64 5. ]
    (wat_invoke src "hyp" [ F64 3.; F64 4. ])

let test_wat_parse_errors () =
  let bad = [ "(module (func (export \"f\") (result i32) (i32.unknown)))";
              "(module (func"; "(module (memory))" ] in
  List.iter
    (fun src ->
      Alcotest.(check bool) ("rejects: " ^ src) true
        (try
           ignore (Wat.parse src);
           false
         with Wat.Parse_error _ -> true))
    bad

let test_wat_start () =
  let src =
    {|(module
        (global $g (mut i32) (i32.const 0))
        (func $init (global.set $g (i32.const 7)))
        (start $init)
        (func (export "read") (result i32) (global.get $g)))|}
  in
  Alcotest.(check (list value)) "start ran" [ I32 7l ] (wat_invoke src "read" [])

let suite_wat =
  [ ("wat", [
      Alcotest.test_case "folded" `Quick test_wat_folded;
      Alcotest.test_case "flat loop + labels" `Quick test_wat_flat_loop;
      Alcotest.test_case "memory + data" `Quick test_wat_memory_data;
      Alcotest.test_case "globals + if/else" `Quick test_wat_globals_and_if;
      Alcotest.test_case "named calls" `Quick test_wat_call_named;
      Alcotest.test_case "imports" `Quick test_wat_import;
      Alcotest.test_case "export field" `Quick test_wat_export_field;
      Alcotest.test_case "comments + hex" `Quick test_wat_comments_and_hex;
      Alcotest.test_case "f64" `Quick test_wat_f64;
      Alcotest.test_case "parse errors" `Quick test_wat_parse_errors;
      Alcotest.test_case "start" `Quick test_wat_start;
    ]);
  ]

(* --- binary codec --- *)

let roundtrip m = Binary.decode (Binary.encode m)

let test_binary_roundtrip_simple () =
  let m =
    mk_func ~params:[ Types.I32 ] ~results:[ Types.I32 ] ~locals:[ Types.I64 ]
      [ Local_get 0; I32_const 5l; I32_binop Add ]
  in
  let m' = roundtrip m in
  Alcotest.(check bool) "same module" true (m = m');
  Alcotest.(check (list value)) "decoded executes" [ I32 12l ]
    (Interp.invoke (Interp.instantiate m') "f" [ I32 7l ])

let test_binary_magic () =
  let enc = Binary.encode (mk_func ~params:[] ~results:[] ~locals:[] [ Nop ]) in
  Alcotest.(check string) "magic" "\x00asm\x01\x00\x00\x00" (String.sub enc 0 8);
  Alcotest.(check bool) "bad magic rejected" true
    (try
       ignore (Binary.decode ("XXXX" ^ String.sub enc 4 (String.length enc - 4)));
       false
     with Binary.Decode_error _ -> true)

let test_binary_full_module () =
  let b = B.create () in
  B.add_memory b ~max:4 2;
  B.add_table b 3;
  B.add_data b ~offset:10 "payload";
  let g = B.add_global b ~export:"g" ~mut:Types.Var Types.I64 [ I64_const 9L ] in
  ignore g;
  let callee =
    B.add_func b ~params:[ Types.F64 ] ~results:[ Types.F64 ] ~locals:[]
      [ Local_get 0; F64_unop Sqrt ]
  in
  B.add_elem b ~offset:0 [ callee ];
  ignore
    (B.add_func b ~name:"main" ~params:[] ~results:[ Types.F64 ]
       ~locals:[ Types.F64 ]
       [ F64_const 16.; Local_set 0;
         Block (Some Types.F64, [ Local_get 0; Call callee; Br 0 ]) ]);
  let m = B.build b in
  let m' = roundtrip m in
  Alcotest.(check bool) "structural equality" true (m = m');
  Alcotest.(check (list value)) "executes" [ F64 4. ]
    (Interp.invoke (Interp.instantiate m') "main" [])

let test_binary_negative_leb () =
  let m =
    mk_func ~params:[] ~results:[ Types.I64 ] ~locals:[]
      [ I64_const (-123456789L) ]
  in
  Alcotest.(check (list value)) "negative i64 const" [ I64 (-123456789L) ]
    (Interp.invoke (Interp.instantiate (roundtrip m)) "f" [])

let test_binary_truncated () =
  let enc = Binary.encode (mk_func ~params:[] ~results:[] ~locals:[] [ Nop ]) in
  Alcotest.(check bool) "truncated rejected" true
    (try
       ignore (Binary.decode (String.sub enc 0 (String.length enc - 2)));
       false
     with Binary.Decode_error _ -> true)

let prop_binary_roundtrip_wat =
  (* generate tiny random arithmetic functions and roundtrip them *)
  QCheck.Test.make ~name:"encode/decode roundtrip on random bodies" ~count:100
    QCheck.(small_list (int_range 0 5))
    (fun ops ->
      let body =
        List.concat_map
          (fun op ->
            match op with
            | 0 -> [ B.i32 3; B.i32 4; I32_binop Add; Drop ]
            | 1 -> [ I64_const 7L; I64_unop Popcnt; Drop ]
            | 2 -> [ F64_const 1.5; F64_unop Floor; Drop ]
            | 3 -> [ Block (Some Types.I32, [ B.i32 1 ]); Drop ]
            | 4 -> [ B.i32 1; If (None, [ Nop ], [ Unreachable ]) ]
            | _ -> [ Nop ])
          ops
      in
      let m = mk_func ~params:[] ~results:[] ~locals:[] body in
      roundtrip m = m)

(* --- validator --- *)

let valid m = Validate.is_valid m

let test_validate_accepts_good () =
  let m =
    mk_func ~params:[ Types.I32 ] ~results:[ Types.I32 ] ~locals:[ Types.I32 ]
      [ Local_get 0; Local_set 1; Local_get 1 ]
  in
  Alcotest.(check bool) "good module" true (valid m)

let test_validate_type_mismatch () =
  let m =
    mk_func ~params:[] ~results:[ Types.I32 ] ~locals:[]
      [ F64_const 1.0; I32_unop Clz ]
  in
  Alcotest.(check bool) "f64 into i32 op" false (valid m)

let test_validate_underflow () =
  let m = mk_func ~params:[] ~results:[ Types.I32 ] ~locals:[] [ I32_binop Add ] in
  Alcotest.(check bool) "stack underflow" false (valid m)

let test_validate_missing_result () =
  let m = mk_func ~params:[] ~results:[ Types.I32 ] ~locals:[] [ Nop ] in
  Alcotest.(check bool) "missing result" false (valid m)

let test_validate_extra_values () =
  let m = mk_func ~params:[] ~results:[] ~locals:[] [ I32_const 1l ] in
  Alcotest.(check bool) "extra value at end" false (valid m)

let test_validate_bad_local () =
  let m = mk_func ~params:[ Types.I32 ] ~results:[ Types.I32 ] ~locals:[] [ Local_get 3 ] in
  Alcotest.(check bool) "local out of range" false (valid m)

let test_validate_bad_branch_depth () =
  let m =
    mk_func ~params:[] ~results:[] ~locals:[] [ Block (None, [ Br 5 ]) ]
  in
  Alcotest.(check bool) "branch depth" false (valid m)

let test_validate_unreachable_polymorphism () =
  (* after unreachable, anything goes — this is valid *)
  let m =
    mk_func ~params:[] ~results:[ Types.I32 ] ~locals:[]
      [ Unreachable; I32_binop Add ]
  in
  Alcotest.(check bool) "stack-polymorphic after unreachable" true (valid m)

let test_validate_if_arms_agree () =
  let good =
    mk_func ~params:[ Types.I32 ] ~results:[ Types.I32 ] ~locals:[]
      [ Local_get 0; If (Some Types.I32, [ B.i32 1 ], [ B.i32 2 ]) ]
  in
  Alcotest.(check bool) "agreeing arms" true (valid good);
  let bad =
    mk_func ~params:[ Types.I32 ] ~results:[ Types.I32 ] ~locals:[]
      [ Local_get 0; If (Some Types.I32, [ B.i32 1 ], [ F64_const 2. ]) ]
  in
  Alcotest.(check bool) "disagreeing arms" false (valid bad)

let test_validate_memory_requirements () =
  let m = mk_func ~params:[] ~results:[ Types.I32 ] ~locals:[]
      [ B.i32 0; I32_load { offset = 0; align = 2 } ] in
  Alcotest.(check bool) "load without memory" false (valid m);
  let b = B.create () in
  B.add_memory b 1;
  ignore (B.add_func b ~name:"f" ~params:[] ~results:[ Types.I32 ] ~locals:[]
            [ B.i32 0; I32_load { offset = 0; align = 5 } ]);
  Alcotest.(check bool) "over-aligned load" false (valid (B.build b))

let test_validate_immutable_global () =
  let b = B.create () in
  let g = B.add_global b ~mut:Types.Const Types.I32 [ B.i32 1 ] in
  ignore (B.add_func b ~name:"f" ~params:[] ~results:[] ~locals:[]
            [ B.i32 2; Global_set g ]);
  Alcotest.(check bool) "set immutable" false (valid (B.build b))

let test_validate_duplicate_export () =
  let b = B.create () in
  let f = B.add_func b ~name:"dup" ~params:[] ~results:[] ~locals:[] [ Nop ] in
  B.export_func b "dup" f;
  Alcotest.(check bool) "duplicate export" false (valid (B.build b))

let test_validate_engine_modules () =
  (* every module the other test groups execute should also validate *)
  List.iter
    (fun (name, m) ->
      Alcotest.(check bool) (name ^ " validates") true (valid m))
    [ ("factorial",
       mk_func ~params:[ Types.I32 ] ~results:[ Types.I32 ] ~locals:[ Types.I32 ]
         [ I32_const 1l; Local_set 1;
           Block (None, [
             Loop (None, [
               Local_get 0; I32_const 1l; I32_relop Le_s; Br_if 1;
               Local_get 1; Local_get 0; I32_binop Mul; Local_set 1;
               Local_get 0; I32_const 1l; I32_binop Sub; Local_set 0;
               Br 0 ]) ]);
           Local_get 1 ]);
      ("wat-parsed",
       Wat.parse
         {|(module (func (export "f") (param i32) (result i32)
             (i32.add (local.get 0) (i32.const 1))))|});
    ]

let qc = QCheck_alcotest.to_alcotest

let suite_codec =
  [ ("binary", [
      Alcotest.test_case "roundtrip simple" `Quick test_binary_roundtrip_simple;
      Alcotest.test_case "magic" `Quick test_binary_magic;
      Alcotest.test_case "full module" `Quick test_binary_full_module;
      Alcotest.test_case "negative leb" `Quick test_binary_negative_leb;
      Alcotest.test_case "truncated" `Quick test_binary_truncated;
      qc prop_binary_roundtrip_wat;
    ]);
    ("validate", [
      Alcotest.test_case "accepts good" `Quick test_validate_accepts_good;
      Alcotest.test_case "type mismatch" `Quick test_validate_type_mismatch;
      Alcotest.test_case "underflow" `Quick test_validate_underflow;
      Alcotest.test_case "missing result" `Quick test_validate_missing_result;
      Alcotest.test_case "extra values" `Quick test_validate_extra_values;
      Alcotest.test_case "bad local" `Quick test_validate_bad_local;
      Alcotest.test_case "bad branch depth" `Quick test_validate_bad_branch_depth;
      Alcotest.test_case "unreachable polymorphism" `Quick test_validate_unreachable_polymorphism;
      Alcotest.test_case "if arms" `Quick test_validate_if_arms_agree;
      Alcotest.test_case "memory rules" `Quick test_validate_memory_requirements;
      Alcotest.test_case "immutable global" `Quick test_validate_immutable_global;
      Alcotest.test_case "duplicate export" `Quick test_validate_duplicate_export;
      Alcotest.test_case "engine modules validate" `Quick test_validate_engine_modules;
    ]);
  ]

let () = Alcotest.run "twine_wasm" (suite_core @ suite_wat @ suite_codec)
