(* The paper's flagship scenario (§V): a full SQL database whose file
   lives on untrusted storage, transparently encrypted by the Intel
   Protected File System inside the enclave.

     dune exec examples/secure_db.exe

   Everything below the SQL API — pager, rollback journal, B-trees — runs
   against protected files; the untrusted backing store only ever sees
   ciphertext. *)

open Twine
open Twine_sgx
open Twine_ipfs
open Twine_sqldb

let () =
  let machine = Machine.create ~seed:"secure-db" () in
  let rt = Runtime.create machine in
  let backing = Backing.memory () in
  let fs =
    Protected_fs.create (Runtime.enclave rt) backing
      ~variant:Protected_fs.Optimized ()
  in

  (* A SQL database stored in protected files. *)
  let db = Db.open_db ~vfs:(Bench_db.pfs_svfs fs) "patients.db" in
  ignore
    (Db.exec db
       {|CREATE TABLE patients(
           id INTEGER PRIMARY KEY,
           name TEXT NOT NULL,
           diagnosis TEXT,
           risk REAL)|});
  ignore (Db.exec db "CREATE INDEX patients_name ON patients(name)");
  ignore
    (Db.exec db
       {|INSERT INTO patients VALUES
           (1, 'alice', 'hypertension', 0.7),
           (2, 'bob', 'diabetes', 0.4),
           (3, 'carol', 'hypertension', 0.9),
           (4, 'dave', 'asthma', 0.2)|});

  let print_rows title rows =
    Printf.printf "%s\n" title;
    List.iter
      (fun row ->
        print_string "  ";
        List.iter (fun v -> Printf.printf "%-14s" (Value.to_string v)) row;
        print_newline ())
      rows
  in
  print_rows "high-risk hypertension patients:"
    (Db.query db
       "SELECT name, risk FROM patients WHERE diagnosis = 'hypertension' AND risk > 0.5 ORDER BY risk DESC");
  print_rows "per-diagnosis averages:"
    (Db.query db
       "SELECT diagnosis, count(*), avg(risk) FROM patients GROUP BY diagnosis ORDER BY diagnosis");

  (* The untrusted host sees only ciphertext. *)
  Db.close db;
  let plaintext_visible =
    List.exists
      (fun key ->
        match Backing.size backing key with
        | None -> false
        | Some n ->
            let raw = Backing.read backing key ~pos:0 ~len:n in
            let rec has i =
              i + 5 <= String.length raw
              && (String.sub raw i 5 = "alice" || has (i + 1))
            in
            has 0)
      (Backing.list backing)
  in
  Printf.printf "untrusted storage files: %d; plaintext visible: %b\n"
    (List.length (Backing.list backing))
    plaintext_visible;

  (* Reopen: the same enclave derives the same file keys and can decrypt. *)
  let db2 = Db.open_db ~vfs:(Bench_db.pfs_svfs fs) "patients.db" in
  print_rows "after reopen (decrypted in-enclave):"
    (Db.query db2 "SELECT name FROM patients ORDER BY id");
  Db.close db2;

  (* A different machine cannot: the file key derives from the CPU's
     fused secret and the enclave measurement. *)
  let other_machine = Machine.create ~seed:"attacker-box" () in
  let other_rt = Runtime.create other_machine in
  let other_fs = Protected_fs.create (Runtime.enclave other_rt) backing () in
  (try
     let db3 = Db.open_db ~vfs:(Bench_db.pfs_svfs other_fs) "patients.db" in
     ignore (Db.query db3 "SELECT name FROM patients");
     print_endline "BUG: attacker machine read the database!"
   with Protected_fs.Integrity_violation _ | Pager.Corrupt _ ->
     print_endline "attacker machine: decryption refused (as intended)")
