(* A trusted key-value store built from the substrate pieces directly:
   sealed storage, protected files and tamper evidence.

     dune exec examples/trusted_kv.exe

   Shows the SGX data-at-rest guarantees the paper relies on: sealing
   policies (MRENCLAVE vs MRSIGNER), tamper detection on protected files,
   and the rollback limitation §IV-D documents. *)

open Twine_sgx
open Twine_ipfs

let () =
  let machine = Machine.create ~seed:"kv" () in
  let enclave = Enclave.create machine ~signer:"acme" ~code:"kv-store-v1" () in
  let backing = Backing.memory () in
  let fs = Protected_fs.create enclave backing () in

  (* --- a tiny KV API over one protected file per key --- *)
  let put key value =
    let f = Protected_fs.open_file fs ~mode:`Trunc ("kv/" ^ key) in
    ignore (Protected_fs.write f value);
    Protected_fs.close f
  in
  let get key =
    if not (Protected_fs.exists fs ("kv/" ^ key)) then None
    else begin
      let f = Protected_fs.open_file fs ~mode:`Rdonly ("kv/" ^ key) in
      let buf = Bytes.create (Protected_fs.file_size f) in
      let n = Protected_fs.read f buf ~off:0 ~len:(Bytes.length buf) in
      Protected_fs.close f;
      Some (Bytes.sub_string buf 0 n)
    end
  in

  put "api-token" "sk-live-0123456789";
  put "config" "retries=3;endpoint=internal";
  Printf.printf "get api-token -> %s\n" (Option.value (get "api-token") ~default:"<none>");
  Printf.printf "get missing   -> %s\n" (Option.value (get "missing") ~default:"<none>");

  (* --- sealing: same data, bound to enclave identity --- *)
  let sealed_enclave = Seal.seal enclave "only this exact binary" in
  let sealed_vendor = Seal.seal enclave ~policy:Seal.Mr_signer "any acme enclave" in
  Printf.printf "sealed blob sizes: %d / %d bytes\n" (String.length sealed_enclave)
    (String.length sealed_vendor);

  (* v2 of the same vendor's enclave: MRSIGNER blob opens, MRENCLAVE not *)
  let v2 = Enclave.create machine ~signer:"acme" ~code:"kv-store-v2" () in
  Printf.printf "v2 unseals MRSIGNER blob: %b\n"
    (Seal.unseal v2 sealed_vendor = Some "any acme enclave");
  Printf.printf "v2 unseals MRENCLAVE blob: %b (must be false)\n"
    (Seal.unseal v2 sealed_enclave <> None);

  (* --- tamper detection --- *)
  let target = "kv/api-token" in
  let n = Option.get (Backing.size backing target) in
  let raw = Backing.read backing target ~pos:(n / 2) ~len:1 in
  Backing.write backing target ~pos:(n / 2)
    (String.make 1 (Char.chr (Char.code raw.[0] lxor 0x01)));
  (try
     ignore (get "api-token");
     print_endline "BUG: tampered value was accepted!"
   with Protected_fs.Integrity_violation what ->
     Printf.printf "tamper detected: %s\n" what);

  (* --- the documented rollback limitation (§IV-D) --- *)
  (* snapshot both files of a key, overwrite with a newer value, restore
     the old snapshot: IPFS cannot tell (no freshness protection) *)
  put "balance" "100";
  let snap_data = Backing.read backing "kv/balance" ~pos:0 ~len:1_000_000 in
  let snap_meta = Backing.read backing "kv/balance.pfsmeta" ~pos:0 ~len:1_000_000 in
  put "balance" "0";
  ignore (Backing.delete backing "kv/balance");
  ignore (Backing.delete backing "kv/balance.pfsmeta");
  Backing.write backing "kv/balance" ~pos:0 snap_data;
  Backing.write backing "kv/balance.pfsmeta" ~pos:0 snap_meta;
  Printf.printf "after rollback attack, balance reads: %s (stale accepted — known limitation)\n"
    (Option.value (get "balance") ~default:"<none>")
