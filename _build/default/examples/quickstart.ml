(* Quickstart: run an unmodified WASI application inside a (simulated)
   SGX enclave with TWINE.

     dune exec examples/quickstart.exe

   The application is ordinary WebAssembly using the standard WASI
   interface — nothing in it knows about enclaves. TWINE supplies the
   runtime, the WASI host, and the protection. *)

open Twine
open Twine_sgx

let app =
  {|(module
      (import "wasi_snapshot_preview1" "fd_write"
        (func $fd_write (param i32 i32 i32 i32) (result i32)))
      (import "wasi_snapshot_preview1" "random_get"
        (func $random_get (param i32 i32) (result i32)))
      (memory (export "memory") 1)
      (data (i32.const 100) "TWINE quickstart: 8 trusted random bytes: ")
      (data (i32.const 160) "0123456789abcdef")
      (func $hex_digit (param $n i32) (result i32)
        (i32.load8_u (i32.add (i32.const 160) (local.get $n))))
      (func (export "_start")
        (local $i i32)
        ;; fetch trusted randomness from the enclave
        (drop (call $random_get (i32.const 200) (i32.const 8)))
        ;; hex-encode it after the banner text
        (local.set $i (i32.const 0))
        (block $done
          (loop $next
            (br_if $done (i32.ge_s (local.get $i) (i32.const 8)))
            (i32.store8
              (i32.add (i32.const 142) (i32.mul (local.get $i) (i32.const 2)))
              (call $hex_digit
                (i32.shr_u (i32.load8_u (i32.add (i32.const 200) (local.get $i)))
                           (i32.const 4))))
            (i32.store8
              (i32.add (i32.const 143) (i32.mul (local.get $i) (i32.const 2)))
              (call $hex_digit
                (i32.and (i32.load8_u (i32.add (i32.const 200) (local.get $i)))
                         (i32.const 15))))
            (local.set $i (i32.add (local.get $i) (i32.const 1)))
            (br $next)))
        (i32.store8 (i32.const 158) (i32.const 10)) ;; newline
        ;; print banner + hex + newline
        (i32.store (i32.const 8) (i32.const 100))
        (i32.store (i32.const 12) (i32.const 59))
        (drop (call $fd_write (i32.const 1) (i32.const 8) (i32.const 1) (i32.const 20)))))|}

let () =
  (* 1. a machine with SGX support (virtual clock + EPC + fused keys) *)
  let machine = Machine.create ~seed:"quickstart" () in

  (* 2. the TWINE runtime: launches an enclave whose measurement covers
     the runtime code, with a protected file system behind WASI *)
  let rt = Runtime.create machine in
  Printf.printf "enclave measurement: %s...\n"
    (String.sub (Twine_crypto.Hexcodec.encode (Enclave.measurement (Runtime.enclave rt))) 0 16);

  (* 3. deploy the unmodified WASI application *)
  Runtime.deploy rt (Twine_wasm.Wat.parse app);

  (* 4. one ECALL runs it; WASI random_get was served by the enclave *)
  let r = Runtime.run rt in
  print_string r.Runtime.stdout;
  Printf.printf "exit code: %d\n" r.Runtime.exit_code;
  Printf.printf "enclave boundary crossings: %d\n"
    (Enclave.transitions (Runtime.enclave rt));
  Printf.printf "simulated time elapsed: %.3f ms\n"
    (float_of_int (Machine.now_ns machine) /. 1e6)
