(* Figure 1's workflow end to end: an application provider who only
   releases its (confidential) Wasm module to an enclave that proves,
   via remote attestation, that it runs the genuine TWINE runtime.

     dune exec examples/attested_deploy.exe *)

open Twine
open Twine_sgx

let confidential_app =
  {|(module
      (import "wasi_snapshot_preview1" "fd_write"
        (func $fd_write (param i32 i32 i32 i32) (result i32)))
      (memory (export "memory") 1)
      (data (i32.const 100) "proprietary model executed in-enclave\n")
      (func (export "_start")
        (i32.store (i32.const 8) (i32.const 100))
        (i32.store (i32.const 12) (i32.const 38))
        (drop (call $fd_write (i32.const 1) (i32.const 8) (i32.const 1) (i32.const 20)))))|}

let () =
  (* The provider compiles its app ahead of time (Figure 1, step 1). *)
  let wasm_binary = Twine_wasm.Binary.encode (Twine_wasm.Wat.parse confidential_app) in
  Printf.printf "provider: module is %d bytes of confidential Wasm\n"
    (String.length wasm_binary);

  (* A data-centre machine the provider has never seen, but whose CPU is
     registered with the attestation service. *)
  let machine = Machine.create ~seed:"edge-node-17" () in
  let service = Attestation.service_for machine in
  let provider = Runtime.Provider.create ~wasm:wasm_binary ~service in

  (* The hosting platform starts a TWINE enclave and asks for the app. *)
  let rt = Runtime.create machine in
  Runtime.deploy_from rt provider;
  print_endline "provider: quote verified, module delivered over protected channel";

  let r = Runtime.run rt in
  print_string r.Runtime.stdout;

  (* A machine outside the attestation service's registry is refused. *)
  let rogue = Machine.create ~seed:"rogue-cloud" () in
  let rogue_rt = Runtime.create rogue in
  (try
     Runtime.deploy_from rogue_rt provider;
     print_endline "BUG: rogue machine obtained the module!"
   with Runtime.Deploy_error e -> Printf.printf "rogue machine refused: %s\n" e);

  (* An enclave with the right CPU but the wrong code is also refused:
     the quote carries MRENCLAVE of whatever actually runs. *)
  let impostor = Enclave.create machine ~code:"impostor runtime" () in
  let q =
    Attestation.quote impostor ~data:(Twine_crypto.Sha256.digest (String.make 32 'x'))
  in
  (match Runtime.Provider.deliver provider ~quote:q ~runtime_pub:(String.make 32 'x') with
  | Error e -> Printf.printf "impostor enclave refused: %s\n" e
  | Ok _ -> print_endline "BUG: impostor obtained the module!")
