examples/quickstart.ml: Enclave Machine Printf Runtime String Twine Twine_crypto Twine_sgx Twine_wasm
