examples/trusted_kv.mli:
