examples/secure_db.ml: Backing Bench_db Db List Machine Pager Printf Protected_fs Runtime String Twine Twine_ipfs Twine_sgx Twine_sqldb Value
