examples/attested_deploy.mli:
