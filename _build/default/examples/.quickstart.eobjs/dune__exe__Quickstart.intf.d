examples/quickstart.mli:
