examples/trusted_kv.ml: Backing Bytes Char Enclave Machine Option Printf Protected_fs Seal String Twine_ipfs Twine_sgx
