examples/attested_deploy.ml: Attestation Enclave Machine Printf Runtime String Twine Twine_crypto Twine_sgx Twine_wasm
