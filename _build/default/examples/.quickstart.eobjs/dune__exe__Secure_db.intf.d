examples/secure_db.mli:
