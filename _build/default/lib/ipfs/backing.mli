(** Untrusted backing store for protected files — the host file system as
    seen from outside the enclave. Ciphertext only ever lands here. *)

type t

val memory : unit -> t
(** In-memory store (used by tests and benches for determinism). *)

val directory : string -> t
(** Store files under a real directory on the host file system. Path
    separators in keys are encoded, so keys cannot escape the root. *)

val read : t -> string -> pos:int -> len:int -> string
(** Short reads at EOF return fewer bytes; a missing file reads as empty. *)

val write : t -> string -> pos:int -> string -> unit
(** Extends the file with zero bytes if [pos] is past its current end. *)

val size : t -> string -> int option
val exists : t -> string -> bool
val delete : t -> string -> bool
val truncate : t -> string -> int -> unit
val list : t -> string list
