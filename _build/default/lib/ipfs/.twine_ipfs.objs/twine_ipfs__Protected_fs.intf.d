lib/ipfs/protected_fs.mli: Backing Bytes Twine_sgx
