lib/ipfs/protected_fs.ml: Aes Array Backing Buffer Bytes Ccm Char Costs Enclave Gcm Hmac List Machine Printf Seal String Twine_crypto Twine_sgx Twine_sim
