lib/ipfs/backing.ml: Array Buffer Bytes Filename Fun Hashtbl List Option String Sys Unix
