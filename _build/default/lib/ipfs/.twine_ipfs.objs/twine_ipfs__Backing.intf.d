lib/ipfs/backing.mli:
