(* Row (de)serialisation: a one-byte type tag per value followed by a
   fixed- or length-prefixed payload. Keys for index B-trees reuse the
   same encoding; ordering is defined by decoding and comparing values. *)

let put_u16 b v =
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff))

let put_i64 b (v : int64) =
  for k = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xff))
  done

let get_u16 s off = Char.code s.[off] lor (Char.code s.[off + 1] lsl 8)

let get_i64 s off =
  let v = ref 0L in
  for k = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[off + k]))
  done;
  !v

let encode (values : Value.t list) =
  let b = Buffer.create 64 in
  List.iter
    (fun (v : Value.t) ->
      match v with
      | Value.Null -> Buffer.add_char b '\x00'
      | Value.Int x ->
          Buffer.add_char b '\x01';
          put_i64 b x
      | Value.Real x ->
          Buffer.add_char b '\x02';
          put_i64 b (Int64.bits_of_float x)
      | Value.Text s ->
          Buffer.add_char b '\x03';
          put_u16 b (String.length s);
          Buffer.add_string b s
      | Value.Blob s ->
          Buffer.add_char b '\x04';
          put_u16 b (String.length s);
          Buffer.add_string b s)
    values;
  Buffer.contents b

exception Corrupt of string

let decode s : Value.t list =
  let n = String.length s in
  let rec go off acc =
    if off >= n then List.rev acc
    else
      match s.[off] with
      | '\x00' -> go (off + 1) (Value.Null :: acc)
      | '\x01' ->
          if off + 9 > n then raise (Corrupt "int truncated");
          go (off + 9) (Value.Int (get_i64 s (off + 1)) :: acc)
      | '\x02' ->
          if off + 9 > n then raise (Corrupt "real truncated");
          go (off + 9) (Value.Real (Int64.float_of_bits (get_i64 s (off + 1))) :: acc)
      | '\x03' | '\x04' ->
          if off + 3 > n then raise (Corrupt "string header truncated");
          let len = get_u16 s (off + 1) in
          if off + 3 + len > n then raise (Corrupt "string truncated");
          let body = String.sub s (off + 3) len in
          let v =
            if s.[off] = '\x03' then Value.Text body else Value.Blob body
          in
          go (off + 3 + len) (v :: acc)
      | c -> raise (Corrupt (Printf.sprintf "bad tag 0x%02x" (Char.code c)))
  in
  go 0 []

(* Ordering of encoded records, used by index B-trees: decode and compare
   value lists lexicographically. *)
let compare_encoded a b =
  let rec cmp xs ys =
    match (xs, ys) with
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | x :: xs, y :: ys ->
        let c = Value.compare x y in
        if c <> 0 then c else cmp xs ys
  in
  cmp (decode a) (decode b)
