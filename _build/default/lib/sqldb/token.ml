(* SQL tokenizer. Keywords are case-insensitive; identifiers may be
   double-quoted; strings use single quotes with '' escaping; blobs are
   x'hex' literals. *)

type t =
  | Ident of string
  | Keyword of string  (* uppercased *)
  | Int_lit of int64
  | Float_lit of float
  | String_lit of string
  | Blob_lit of string
  | Punct of string  (* ( ) , ; . * = != <> < <= > >= + - / % || ? *)
  | Eof

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let keywords =
  [ "SELECT"; "FROM"; "WHERE"; "INSERT"; "INTO"; "VALUES"; "UPDATE"; "SET";
    "DELETE"; "CREATE"; "TABLE"; "INDEX"; "UNIQUE"; "ON"; "DROP"; "IF";
    "EXISTS"; "NOT"; "NULL"; "PRIMARY"; "KEY"; "INTEGER"; "INT"; "TEXT";
    "REAL"; "BLOB"; "AND"; "OR"; "IS"; "IN"; "BETWEEN"; "LIKE"; "ORDER";
    "BY"; "ASC"; "DESC"; "LIMIT"; "OFFSET"; "GROUP"; "JOIN"; "INNER";
    "LEFT"; "OUTER"; "AS"; "DISTINCT"; "BEGIN"; "COMMIT"; "ROLLBACK";
    "TRANSACTION"; "PRAGMA"; "ANALYZE"; "DEFAULT"; "HAVING"; "CASE"; "WHEN";
    "THEN"; "ELSE"; "END"; "CAST"; "VACUUM"; "EXPLAIN"; "AUTOINCREMENT" ]

let is_keyword s = List.mem (String.uppercase_ascii s) keywords

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let emit t = toks := t :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '-' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      while !i + 1 < n && not (src.[!i] = '*' && src.[!i + 1] = '/') do incr i done;
      i := !i + 2
    end
    else if (c = 'x' || c = 'X') && !i + 1 < n && src.[!i + 1] = '\'' then begin
      (* blob literal *)
      let close = try String.index_from src (!i + 2) '\'' with Not_found -> fail "unterminated blob" in
      let hex = String.sub src (!i + 2) (close - !i - 2) in
      emit (Blob_lit (Twine_crypto.Hexcodec.decode hex));
      i := close + 1
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let word = String.sub src start (!i - start) in
      if is_keyword word then emit (Keyword (String.uppercase_ascii word))
      else emit (Ident word)
    end
    else if c = '"' then begin
      let close = try String.index_from src (!i + 1) '"' with Not_found -> fail "unterminated identifier" in
      emit (Ident (String.sub src (!i + 1) (close - !i - 1)));
      i := close + 1
    end
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let start = !i in
      while !i < n && (is_digit src.[!i] || src.[!i] = '.' || src.[!i] = 'e'
                       || src.[!i] = 'E'
                       || ((src.[!i] = '+' || src.[!i] = '-')
                          && (src.[!i - 1] = 'e' || src.[!i - 1] = 'E'))) do
        incr i
      done;
      let lit = String.sub src start (!i - start) in
      (match Int64.of_string_opt lit with
      | Some v -> emit (Int_lit v)
      | None -> (
          match float_of_string_opt lit with
          | Some f -> emit (Float_lit f)
          | None -> fail "bad numeric literal %S" lit))
    end
    else if c = '\'' then begin
      (* string with '' escapes *)
      let b = Buffer.create 16 in
      incr i;
      let rec go () =
        if !i >= n then fail "unterminated string";
        if src.[!i] = '\'' then
          if !i + 1 < n && src.[!i + 1] = '\'' then begin
            Buffer.add_char b '\'';
            i := !i + 2;
            go ()
          end
          else incr i
        else begin
          Buffer.add_char b src.[!i];
          incr i;
          go ()
        end
      in
      go ();
      emit (String_lit (Buffer.contents b))
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "!=" | "<>" | "<=" | ">=" | "||" ->
          emit (Punct two);
          i := !i + 2
      | _ -> (
          match c with
          | '(' | ')' | ',' | ';' | '.' | '*' | '=' | '<' | '>' | '+' | '-'
          | '/' | '%' | '?' ->
              emit (Punct (String.make 1 c));
              incr i
          | _ -> fail "unexpected character %C" c)
    end
  done;
  emit Eof;
  List.rev !toks
