(* SQL values with SQLite's dynamic-typing semantics: the storage class
   ordering NULL < INTEGER/REAL < TEXT < BLOB, numeric affinity in
   arithmetic, and three-valued logic handled at the expression layer. *)

type t =
  | Null
  | Int of int64
  | Real of float
  | Text of string
  | Blob of string

let storage_class = function
  | Null -> 0
  | Int _ | Real _ -> 1
  | Text _ -> 2
  | Blob _ -> 3

let compare a b =
  let ca = storage_class a and cb = storage_class b in
  if ca <> cb then Stdlib.compare ca cb
  else
    match (a, b) with
    | Null, Null -> 0
    | Int x, Int y -> Int64.compare x y
    | Real x, Real y -> Float.compare x y
    | Int x, Real y -> Float.compare (Int64.to_float x) y
    | Real x, Int y -> Float.compare x (Int64.to_float y)
    | Text x, Text y -> String.compare x y
    | Blob x, Blob y -> String.compare x y
    | _ -> assert false

let equal a b = compare a b = 0

let is_null = function Null -> true | _ -> false

(* Truthiness for WHERE: NULL and 0 are false. *)
let to_bool = function
  | Null -> false
  | Int v -> v <> 0L
  | Real v -> v <> 0.
  | Text s -> ( match float_of_string_opt s with Some f -> f <> 0. | None -> false)
  | Blob _ -> false

let of_bool b = Int (if b then 1L else 0L)

(* Numeric coercion for arithmetic. *)
let to_num = function
  | Int v -> `Int v
  | Real v -> `Real v
  | Text s -> (
      match Int64.of_string_opt s with
      | Some v -> `Int v
      | None -> (
          match float_of_string_opt s with Some f -> `Real f | None -> `Int 0L))
  | Null -> `Null
  | Blob _ -> `Int 0L

let arith fi fr a b =
  match (to_num a, to_num b) with
  | `Null, _ | _, `Null -> Null
  | `Int x, `Int y -> fi x y
  | `Int x, `Real y -> fr (Int64.to_float x) y
  | `Real x, `Int y -> fr x (Int64.to_float y)
  | `Real x, `Real y -> fr x y

let add = arith (fun x y -> Int (Int64.add x y)) (fun x y -> Real (x +. y))
let sub = arith (fun x y -> Int (Int64.sub x y)) (fun x y -> Real (x -. y))
let mul = arith (fun x y -> Int (Int64.mul x y)) (fun x y -> Real (x *. y))

let div a b =
  arith
    (fun x y -> if y = 0L then Null else Int (Int64.div x y))
    (fun x y -> if y = 0. then Null else Real (x /. y))
    a b

let rem a b =
  arith
    (fun x y -> if y = 0L then Null else Int (Int64.rem x y))
    (fun x y -> if y = 0. then Null else Real (Float.rem x y))
    a b

let concat a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | _ ->
      let s = function
        | Text s | Blob s -> s
        | Int v -> Int64.to_string v
        | Real v -> Printf.sprintf "%g" v
        | Null -> ""
      in
      Text (s a ^ s b)

let to_string = function
  | Null -> "NULL"
  | Int v -> Int64.to_string v
  | Real v -> Printf.sprintf "%g" v
  | Text s -> s
  | Blob s -> "x'" ^ Twine_crypto.Hexcodec.encode s ^ "'"

let to_int64 = function
  | Int v -> v
  | Real v -> Int64.of_float v
  | Text s -> ( match Int64.of_string_opt s with Some v -> v | None -> 0L)
  | Null | Blob _ -> 0L

(* SQL LIKE with % and _ wildcards (case-insensitive, as SQLite). *)
let like ~pattern s =
  let p = String.lowercase_ascii pattern and s = String.lowercase_ascii s in
  let np = String.length p and ns = String.length s in
  let rec go pi si =
    if pi = np then si = ns
    else
      match p.[pi] with
      | '%' ->
          let rec try_at k = k <= ns && (go (pi + 1) k || try_at (k + 1)) in
          try_at si
      | '_' -> si < ns && go (pi + 1) (si + 1)
      | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
  in
  go 0 0
