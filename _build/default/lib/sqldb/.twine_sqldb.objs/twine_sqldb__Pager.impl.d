lib/sqldb/pager.ml: Bytes Hashtbl Int32 List Printf String Svfs Twine_sim
