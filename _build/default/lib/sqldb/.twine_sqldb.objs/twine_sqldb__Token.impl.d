lib/sqldb/token.ml: Buffer Int64 List Printf String Twine_crypto
