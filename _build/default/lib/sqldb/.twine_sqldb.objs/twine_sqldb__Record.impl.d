lib/sqldb/record.ml: Buffer Char Int64 List Printf String Value
