lib/sqldb/value.ml: Float Int64 Printf Stdlib String Twine_crypto
