lib/sqldb/db.ml: Array Btree Float Format Hashtbl Int64 List Option Pager Parser Printf Record Sql_ast String Svfs Twine_crypto Value
