lib/sqldb/sql_ast.ml: Value
