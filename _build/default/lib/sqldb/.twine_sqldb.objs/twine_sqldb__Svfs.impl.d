lib/sqldb/svfs.ml: Bytes Filename Hashtbl String Sys Unix
