lib/sqldb/db.mli: Pager Svfs Value
