lib/sqldb/btree.ml: Bytes Int32 Int64 List Option Pager Printf Record String
