lib/sqldb/parser.ml: Int64 List Printf Sql_ast String Token Value
