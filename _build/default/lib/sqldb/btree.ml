(* B+trees over the pager: one per table (keyed by 64-bit rowid, payload =
   encoded record) and one per index (key = encoded column values with the
   rowid appended, making every key unique).

   Pages decode to a structured node, are modified functionally, and are
   re-encoded; a node that no longer fits splits, propagating a separator
   upwards. Roots keep their page number (the catalog stores it), so a
   root split moves the old root's content to a fresh page. Underfull
   pages are not rebalanced on delete — like a SQLite database awaiting
   VACUUM, which we also provide at the Db layer. *)

let page_size = Pager.page_size
let content_start = 16
let max_payload = page_size - content_start - 16

exception Too_large of int

type node =
  | Table_leaf of (int64 * string) list  (* sorted by rowid *)
  | Table_interior of (int * int64) list * int  (* (child, max key) + right *)
  | Index_leaf of string list  (* sorted encoded keys *)
  | Index_interior of (int * string) list * int

(* --- encoding --- *)

let node_type = function
  | Table_leaf _ -> 1
  | Table_interior _ -> 2
  | Index_leaf _ -> 3
  | Index_interior _ -> 4

let put_i64 b off (v : int64) = Bytes.set_int64_le b off v
let put_u16 b off v = Bytes.set_uint16_le b off v
let put_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)
let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off)

let encode_node b node =
  Bytes.fill b 0 page_size '\000';
  Bytes.set_uint8 b 0 (node_type node);
  let pos = ref content_start in
  let count = ref 0 in
  (match node with
  | Table_leaf cells ->
      List.iter
        (fun (rowid, payload) ->
          put_i64 b !pos rowid;
          put_u16 b (!pos + 8) (String.length payload);
          Bytes.blit_string payload 0 b (!pos + 10) (String.length payload);
          pos := !pos + 10 + String.length payload;
          incr count)
        cells
  | Table_interior (cells, right) ->
      put_u32 b 3 right;
      List.iter
        (fun (child, key) ->
          put_u32 b !pos child;
          put_i64 b (!pos + 4) key;
          pos := !pos + 12;
          incr count)
        cells
  | Index_leaf keys ->
      List.iter
        (fun key ->
          put_u16 b !pos (String.length key);
          Bytes.blit_string key 0 b (!pos + 2) (String.length key);
          pos := !pos + 2 + String.length key;
          incr count)
        keys
  | Index_interior (cells, right) ->
      put_u32 b 3 right;
      List.iter
        (fun (child, key) ->
          put_u32 b !pos child;
          put_u16 b (!pos + 4) (String.length key);
          Bytes.blit_string key 0 b (!pos + 6) (String.length key);
          pos := !pos + 6 + String.length key;
          incr count)
        cells);
  put_u16 b 1 !count

let node_size node =
  content_start
  +
  match node with
  | Table_leaf cells ->
      List.fold_left (fun a (_, p) -> a + 10 + String.length p) 0 cells
  | Table_interior (cells, _) -> 12 * List.length cells
  | Index_leaf keys -> List.fold_left (fun a k -> a + 2 + String.length k) 0 keys
  | Index_interior (cells, _) ->
      List.fold_left (fun a (_, k) -> a + 6 + String.length k) 0 cells

let decode_node b =
  let count = Bytes.get_uint16_le b 1 in
  let pos = ref content_start in
  match Bytes.get_uint8 b 0 with
  | 1 ->
      Table_leaf
        (List.init count (fun _ ->
             let rowid = Bytes.get_int64_le b !pos in
             let len = Bytes.get_uint16_le b (!pos + 8) in
             let payload = Bytes.sub_string b (!pos + 10) len in
             pos := !pos + 10 + len;
             (rowid, payload)))
  | 2 ->
      let right = get_u32 b 3 in
      Table_interior
        ( List.init count (fun _ ->
              let child = get_u32 b !pos in
              let key = Bytes.get_int64_le b (!pos + 4) in
              pos := !pos + 12;
              (child, key)),
          right )
  | 3 ->
      Index_leaf
        (List.init count (fun _ ->
             let len = Bytes.get_uint16_le b !pos in
             let key = Bytes.sub_string b (!pos + 2) len in
             pos := !pos + 2 + len;
             key))
  | 4 ->
      let right = get_u32 b 3 in
      Index_interior
        ( List.init count (fun _ ->
              let child = get_u32 b !pos in
              let len = Bytes.get_uint16_le b (!pos + 4) in
              let key = Bytes.sub_string b (!pos + 6) len in
              pos := !pos + 6 + len;
              (child, key)),
          right )
  | ty -> raise (Pager.Corrupt (Printf.sprintf "bad btree page type %d" ty))

let read_node pager page =
  Pager.work pager 1;
  decode_node (Pager.read_page pager page)

let write_node pager page node =
  Pager.work pager 1;
  encode_node (Pager.modify pager page) node

(* --- creation --- *)

type kind = Table | Index

let create pager kind =
  let page = Pager.alloc pager in
  write_node pager page (match kind with Table -> Table_leaf [] | Index -> Index_leaf []);
  page

(* --- table trees --- *)

let rec table_insert pager page rowid payload =
  match read_node pager page with
  | Table_leaf cells ->
      let rec place = function
        | [] -> [ (rowid, payload) ]
        | (r, p) :: rest ->
            if r = rowid then (rowid, payload) :: rest
            else if r > rowid then (rowid, payload) :: (r, p) :: rest
            else (r, p) :: place rest
      in
      let cells = place cells in
      let node = Table_leaf cells in
      if node_size node <= page_size then begin
        write_node pager page node;
        None
      end
      else begin
        (* split at the midpoint cell *)
        let n = List.length cells in
        let mid = n / 2 in
        let left = List.filteri (fun i _ -> i < mid) cells in
        let right = List.filteri (fun i _ -> i >= mid) cells in
        let sep = fst (List.nth cells (mid - 1)) in
        let right_page = Pager.alloc pager in
        write_node pager page (Table_leaf left);
        write_node pager right_page (Table_leaf right);
        Some (sep, right_page)
      end
  | Table_interior (cells, right) -> (
      let rec choose = function
        | [] -> (right, `Right)
        | (child, key) :: rest ->
            if rowid <= key then (child, `Cell key) else choose rest
      in
      let child, which = choose cells in
      match table_insert pager child rowid payload with
      | None -> None
      | Some (sep, new_page) ->
          let cells, right =
            match which with
            | `Cell key ->
                ( List.concat_map
                    (fun (c, k) ->
                      if c = child && k = key then [ (child, sep); (new_page, key) ]
                      else [ (c, k) ])
                    cells,
                  right )
            | `Right -> (cells @ [ (child, sep) ], new_page)
          in
          let node = Table_interior (cells, right) in
          if node_size node <= page_size then begin
            write_node pager page node;
            None
          end
          else begin
            let n = List.length cells in
            let mid = n / 2 in
            let lcells = List.filteri (fun i _ -> i < mid) cells in
            let mchild, mkey = List.nth cells mid in
            let rcells = List.filteri (fun i _ -> i > mid) cells in
            let right_page = Pager.alloc pager in
            write_node pager page (Table_interior (lcells, mchild));
            write_node pager right_page (Table_interior (rcells, right));
            Some (mkey, right_page)
          end)
  | Index_leaf _ | Index_interior _ ->
      raise (Pager.Corrupt "table op on index page")

(* Root-preserving split. *)
let grow_root pager root (sep_key : [ `I of int64 | `S of string ]) right_page =
  let old = read_node pager root in
  let left_page = Pager.alloc pager in
  write_node pager left_page old;
  match (old, sep_key) with
  | (Table_leaf _ | Table_interior _), `I k ->
      write_node pager root (Table_interior ([ (left_page, k) ], right_page))
  | (Index_leaf _ | Index_interior _), `S k ->
      write_node pager root (Index_interior ([ (left_page, k) ], right_page))
  | _ -> raise (Pager.Corrupt "grow_root: kind mismatch")

let insert_table pager ~root ~rowid payload =
  if String.length payload > max_payload then raise (Too_large (String.length payload));
  match table_insert pager root rowid payload with
  | None -> ()
  | Some (sep, right) -> grow_root pager root (`I sep) right

let rec lookup_table pager ~root rowid =
  match read_node pager root with
  | Table_leaf cells ->
      List.find_map (fun (r, p) -> if r = rowid then Some p else None) cells
  | Table_interior (cells, right) ->
      let rec choose = function
        | [] -> right
        | (child, key) :: rest -> if rowid <= key then child else choose rest
      in
      lookup_table pager ~root:(choose cells) rowid
  | _ -> raise (Pager.Corrupt "table op on index page")

let rec delete_table pager ~root rowid =
  match read_node pager root with
  | Table_leaf cells ->
      let found = List.mem_assoc rowid cells in
      if found then
        write_node pager root (Table_leaf (List.remove_assoc rowid cells));
      found
  | Table_interior (cells, right) ->
      let rec choose = function
        | [] -> right
        | (child, key) :: rest -> if rowid <= key then child else choose rest
      in
      delete_table pager ~root:(choose cells) rowid
  | _ -> raise (Pager.Corrupt "table op on index page")

let rec max_rowid pager ~root =
  match read_node pager root with
  | Table_leaf cells -> (
      match List.rev cells with [] -> None | (r, _) :: _ -> Some r)
  | Table_interior (cells, right) -> (
      match max_rowid pager ~root:right with
      | Some r -> Some r
      | None ->
          (* right subtree empty (possible after deletes): try others *)
          List.fold_left
            (fun acc (child, _) ->
              match max_rowid pager ~root:child with
              | Some r -> Some (max r (Option.value acc ~default:Int64.min_int))
              | None -> acc)
            None cells)
  | _ -> raise (Pager.Corrupt "table op on index page")

exception Stop

(* In-order iteration over [min, max]; f returns false to stop. *)
let iter_table pager ~root ?(min = Int64.min_int) ?(max = Int64.max_int) f =
  let rec go page lower =
    match read_node pager page with
    | Table_leaf cells ->
        List.iter
          (fun (r, p) ->
            if Int64.compare r min >= 0 && Int64.compare r max <= 0 then
              if not (f r p) then raise Stop)
          cells
    | Table_interior (cells, right) ->
        let prev = ref lower in
        List.iter
          (fun (child, key) ->
            (* child covers (prev, key] *)
            if Int64.compare key min >= 0 && Int64.compare !prev max < 0 then
              go child !prev;
            prev := key)
          cells;
        if Int64.compare !prev max < 0 then go right !prev
    | _ -> raise (Pager.Corrupt "table op on index page")
  in
  try go root Int64.min_int with Stop -> ()

let count_table pager ~root =
  let n = ref 0 in
  iter_table pager ~root (fun _ _ ->
      incr n;
      true);
  !n

(* --- index trees --- *)

let kcmp = Record.compare_encoded

let rec index_insert pager page key =
  match read_node pager page with
  | Index_leaf keys ->
      let rec place = function
        | [] -> [ key ]
        | k :: rest ->
            let c = kcmp k key in
            if c = 0 then k :: rest  (* duplicate composite key: no-op *)
            else if c > 0 then key :: k :: rest
            else k :: place rest
      in
      let keys = place keys in
      let node = Index_leaf keys in
      if node_size node <= page_size then begin
        write_node pager page node;
        None
      end
      else begin
        let n = List.length keys in
        let mid = n / 2 in
        let left = List.filteri (fun i _ -> i < mid) keys in
        let right = List.filteri (fun i _ -> i >= mid) keys in
        let sep = List.nth keys (mid - 1) in
        let right_page = Pager.alloc pager in
        write_node pager page (Index_leaf left);
        write_node pager right_page (Index_leaf right);
        Some (sep, right_page)
      end
  | Index_interior (cells, right) -> (
      let rec choose = function
        | [] -> (right, `Right)
        | (child, k) :: rest -> if kcmp key k <= 0 then (child, `Cell k) else choose rest
      in
      let child, which = choose cells in
      match index_insert pager child key with
      | None -> None
      | Some (sep, new_page) ->
          let cells, right =
            match which with
            | `Cell k ->
                ( List.concat_map
                    (fun (c, ck) ->
                      if c = child && ck = k then [ (child, sep); (new_page, k) ]
                      else [ (c, ck) ])
                    cells,
                  right )
            | `Right -> (cells @ [ (child, sep) ], new_page)
          in
          let node = Index_interior (cells, right) in
          if node_size node <= page_size then begin
            write_node pager page node;
            None
          end
          else begin
            let n = List.length cells in
            let mid = n / 2 in
            let lcells = List.filteri (fun i _ -> i < mid) cells in
            let mchild, mkey = List.nth cells mid in
            let rcells = List.filteri (fun i _ -> i > mid) cells in
            let right_page = Pager.alloc pager in
            write_node pager page (Index_interior (lcells, mchild));
            write_node pager right_page (Index_interior (rcells, right));
            Some (mkey, right_page)
          end)
  | Table_leaf _ | Table_interior _ ->
      raise (Pager.Corrupt "index op on table page")

let insert_index pager ~root key =
  if String.length key > max_payload then raise (Too_large (String.length key));
  match index_insert pager root key with
  | None -> ()
  | Some (sep, right) -> grow_root pager root (`S sep) right

let rec delete_index pager ~root key =
  match read_node pager root with
  | Index_leaf keys ->
      let found = List.exists (fun k -> k = key) keys in
      if found then
        write_node pager root (Index_leaf (List.filter (fun k -> k <> key) keys));
      found
  | Index_interior (cells, right) ->
      let rec choose = function
        | [] -> right
        | (child, k) :: rest -> if kcmp key k <= 0 then child else choose rest
      in
      delete_index pager ~root:(choose cells) key
  | _ -> raise (Pager.Corrupt "index op on table page")

(* Iterate keys >= start (or all when [start] is None) in order; f returns
   false to stop. *)
let iter_index pager ~root ?start f =
  let rec go page =
    match read_node pager page with
    | Index_leaf keys ->
        List.iter
          (fun k ->
            let skip = match start with Some s -> kcmp k s < 0 | None -> false in
            if not skip then if not (f k) then raise Stop)
          keys
    | Index_interior (cells, right) ->
        List.iter
          (fun (child, key) ->
            let prune = match start with Some s -> kcmp key s < 0 | None -> false in
            if not prune then go child)
          cells;
        go right
    | _ -> raise (Pager.Corrupt "index op on table page")
  in
  try go root with Stop -> ()

(* Collect every page of a tree (for DROP and VACUUM). *)
let rec pages pager ~root =
  match read_node pager root with
  | Table_leaf _ | Index_leaf _ -> [ root ]
  | Table_interior (cells, right) ->
      root :: List.concat_map (fun (c, _) -> pages pager ~root:c) cells
      @ pages pager ~root:right
  | Index_interior (cells, right) ->
      root :: List.concat_map (fun (c, _) -> pages pager ~root:c) cells
      @ pages pager ~root:right
