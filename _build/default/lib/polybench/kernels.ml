(* The 30 PolyBench/C v4.2.1 kernels, written in the loop-nest DSL.
   Loop structure and operation mix follow the reference C sources; data
   initialisation uses the PolyBench formulas (modular expressions scaled
   to the dataset size) so results are deterministic and comparable
   between the native and Wasm executions. Sizes are scaled down from the
   paper's datasets to interpreter-friendly values; the bench harness
   reports the sizes used. *)

open Kernel_dsl

(* shorthands *)
let i = Iv 0
let j = Iv 1
let k = Iv 2
let l = Iv 3
let ( +! ) a b = Iadd (a, b)
let ( -! ) a b = Isub (a, b)
let ( *! ) a b = Imul (a, b)
let ( %! ) a b = Imod (a, b)
let c n = Ic n
let ( +. ) a b = Fadd (a, b)
let ( -. ) a b = Fsub (a, b)
let ( *. ) a b = Fmul (a, b)
let ( /. ) a b = Fdiv (a, b)
let fi e = Fof_i e
let fc v = Fc v
let ld a idx = Fload (a, idx)
let st a idx e = Store (a, idx, e)
let for_ v lo hi body = For (v, lo, hi, body)

(* PolyBench-style init: A[i][j] = ((i*j + shift) mod m) / m *)
let init2 arr v1 v2 m shift =
  st arr [ v1; v2 ] (fi (((v1 *! v2) +! c shift) %! c m) /. fi (c m))

let init1 arr v m shift = st arr [ v ] (fi ((v +! c shift) %! c m) /. fi (c m))

(* --- linear algebra: blas --- *)

let gemm n =
  (* C = alpha*A*B + beta*C *)
  let a = 0 and b = 1 and cc = 2 in
  {
    name = "gemm";
    arrays = [ (a, [ n; n ]); (b, [ n; n ]); (cc, [ n; n ]) ];
    n_vars = 3;
    body =
      [ for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n)
          [ init2 a i j n 1; init2 b i j n 2; init2 cc i j n 3 ] ];
        for_ 0 (c 0) (c n)
          [ for_ 1 (c 0) (c n)
              [ st cc [ i; j ] (ld cc [ i; j ] *. fc 1.2);
                for_ 2 (c 0) (c n)
                  [ st cc [ i; j ]
                      (ld cc [ i; j ] +. (fc 1.5 *. ld a [ i; k ] *. ld b [ k; j ])) ] ] ];
      ];
    out_arrays = [ cc ];
  }

let two_mm n =
  let a = 0 and b = 1 and cc = 2 and d = 3 and tmp = 4 in
  {
    name = "2mm";
    arrays = [ (a, [ n; n ]); (b, [ n; n ]); (cc, [ n; n ]); (d, [ n; n ]); (tmp, [ n; n ]) ];
    n_vars = 3;
    body =
      [ for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n)
          [ init2 a i j n 1; init2 b i j n 2; init2 cc i j n 3; init2 d i j n 4 ] ];
        for_ 0 (c 0) (c n)
          [ for_ 1 (c 0) (c n)
              [ st tmp [ i; j ] (fc 0.);
                for_ 2 (c 0) (c n)
                  [ st tmp [ i; j ]
                      (ld tmp [ i; j ] +. (fc 1.5 *. ld a [ i; k ] *. ld b [ k; j ])) ] ] ];
        for_ 0 (c 0) (c n)
          [ for_ 1 (c 0) (c n)
              [ st d [ i; j ] (ld d [ i; j ] *. fc 1.2);
                for_ 2 (c 0) (c n)
                  [ st d [ i; j ] (ld d [ i; j ] +. (ld tmp [ i; k ] *. ld cc [ k; j ])) ] ] ];
      ];
    out_arrays = [ d ];
  }

let three_mm n =
  let a = 0 and b = 1 and cc = 2 and d = 3 and e = 4 and f = 5 and g = 6 in
  let mm dst x y =
    for_ 0 (c 0) (c n)
      [ for_ 1 (c 0) (c n)
          [ st dst [ i; j ] (fc 0.);
            for_ 2 (c 0) (c n)
              [ st dst [ i; j ] (ld dst [ i; j ] +. (ld x [ i; k ] *. ld y [ k; j ])) ] ] ]
  in
  {
    name = "3mm";
    arrays =
      [ (a, [ n; n ]); (b, [ n; n ]); (cc, [ n; n ]); (d, [ n; n ]);
        (e, [ n; n ]); (f, [ n; n ]); (g, [ n; n ]) ];
    n_vars = 3;
    body =
      [ for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n)
          [ init2 a i j n 1; init2 b i j n 2; init2 cc i j n 3; init2 d i j n 4 ] ];
        mm e a b; mm f cc d; mm g e f ];
    out_arrays = [ g ];
  }

let atax n =
  let a = 0 and x = 1 and y = 2 and tmp = 3 in
  {
    name = "atax";
    arrays = [ (a, [ n; n ]); (x, [ n ]); (y, [ n ]); (tmp, [ n ]) ];
    n_vars = 2;
    body =
      [ for_ 0 (c 0) (c n) [ init1 x i n 1; for_ 1 (c 0) (c n) [ init2 a i j n 2 ] ];
        for_ 0 (c 0) (c n) [ st y [ i ] (fc 0.) ];
        for_ 0 (c 0) (c n)
          [ st tmp [ i ] (fc 0.);
            for_ 1 (c 0) (c n)
              [ st tmp [ i ] (ld tmp [ i ] +. (ld a [ i; j ] *. ld x [ j ])) ];
            for_ 1 (c 0) (c n)
              [ st y [ j ] (ld y [ j ] +. (ld a [ i; j ] *. ld tmp [ i ])) ] ];
      ];
    out_arrays = [ y ];
  }

let bicg n =
  let a = 0 and s = 1 and q = 2 and p = 3 and r = 4 in
  {
    name = "bicg";
    arrays = [ (a, [ n; n ]); (s, [ n ]); (q, [ n ]); (p, [ n ]); (r, [ n ]) ];
    n_vars = 2;
    body =
      [ for_ 0 (c 0) (c n)
          [ init1 p i n 1; init1 r i n 2; st s [ i ] (fc 0.); st q [ i ] (fc 0.);
            for_ 1 (c 0) (c n) [ init2 a i j n 3 ] ];
        for_ 0 (c 0) (c n)
          [ for_ 1 (c 0) (c n)
              [ st s [ j ] (ld s [ j ] +. (ld r [ i ] *. ld a [ i; j ]));
                st q [ i ] (ld q [ i ] +. (ld a [ i; j ] *. ld p [ j ])) ] ];
      ];
    out_arrays = [ s; q ];
  }

let doitgen n =
  (* nr = nq = np = n *)
  let a = 0 and c4 = 1 and sum = 2 in
  {
    name = "doitgen";
    arrays = [ (a, [ n; n; n ]); (c4, [ n; n ]); (sum, [ n ]) ];
    n_vars = 4;
    body =
      [ for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n) [ for_ 2 (c 0) (c n)
          [ st a [ i; j; k ] (fi (((i *! j) +! k) %! c n) /. fi (c n)) ] ] ];
        for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n) [ init2 c4 i j n 1 ] ];
        for_ 0 (c 0) (c n)
          [ for_ 1 (c 0) (c n)
              [ for_ 2 (c 0) (c n)
                  [ st sum [ k ] (fc 0.);
                    for_ 3 (c 0) (c n)
                      [ st sum [ k ]
                          (ld sum [ k ] +. (ld a [ i; j; l ] *. ld c4 [ l; k ])) ] ];
                for_ 2 (c 0) (c n) [ st a [ i; j; k ] (ld sum [ k ]) ] ] ];
      ];
    out_arrays = [ a ];
  }

let mvt n =
  let a = 0 and x1 = 1 and x2 = 2 and y1 = 3 and y2 = 4 in
  {
    name = "mvt";
    arrays = [ (a, [ n; n ]); (x1, [ n ]); (x2, [ n ]); (y1, [ n ]); (y2, [ n ]) ];
    n_vars = 2;
    body =
      [ for_ 0 (c 0) (c n)
          [ init1 x1 i n 1; init1 x2 i n 2; init1 y1 i n 3; init1 y2 i n 4;
            for_ 1 (c 0) (c n) [ init2 a i j n 5 ] ];
        for_ 0 (c 0) (c n)
          [ for_ 1 (c 0) (c n)
              [ st x1 [ i ] (ld x1 [ i ] +. (ld a [ i; j ] *. ld y1 [ j ])) ] ];
        for_ 0 (c 0) (c n)
          [ for_ 1 (c 0) (c n)
              [ st x2 [ i ] (ld x2 [ i ] +. (ld a [ j; i ] *. ld y2 [ j ])) ] ];
      ];
    out_arrays = [ x1; x2 ];
  }

let gemver n =
  let a = 0 and u1 = 1 and v1 = 2 and u2 = 3 and v2 = 4 and w = 5 and x = 6
  and y = 7 and z = 8 in
  {
    name = "gemver";
    arrays =
      [ (a, [ n; n ]); (u1, [ n ]); (v1, [ n ]); (u2, [ n ]); (v2, [ n ]);
        (w, [ n ]); (x, [ n ]); (y, [ n ]); (z, [ n ]) ];
    n_vars = 2;
    body =
      [ for_ 0 (c 0) (c n)
          [ init1 u1 i n 1; init1 v1 i n 2; init1 u2 i n 3; init1 v2 i n 4;
            init1 y i n 5; init1 z i n 6; st x [ i ] (fc 0.); st w [ i ] (fc 0.);
            for_ 1 (c 0) (c n) [ init2 a i j n 7 ] ];
        for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n)
          [ st a [ i; j ]
              (ld a [ i; j ] +. (ld u1 [ i ] *. ld v1 [ j ]) +. (ld u2 [ i ] *. ld v2 [ j ])) ] ];
        for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n)
          [ st x [ i ] (ld x [ i ] +. (fc 1.2 *. ld a [ j; i ] *. ld y [ j ])) ] ];
        for_ 0 (c 0) (c n) [ st x [ i ] (ld x [ i ] +. ld z [ i ]) ];
        for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n)
          [ st w [ i ] (ld w [ i ] +. (fc 1.5 *. ld a [ i; j ] *. ld x [ j ])) ] ];
      ];
    out_arrays = [ w ];
  }

let gesummv n =
  let a = 0 and b = 1 and x = 2 and y = 3 and tmp = 4 in
  {
    name = "gesummv";
    arrays = [ (a, [ n; n ]); (b, [ n; n ]); (x, [ n ]); (y, [ n ]); (tmp, [ n ]) ];
    n_vars = 2;
    body =
      [ for_ 0 (c 0) (c n)
          [ init1 x i n 1;
            for_ 1 (c 0) (c n) [ init2 a i j n 2; init2 b i j n 3 ] ];
        for_ 0 (c 0) (c n)
          [ st tmp [ i ] (fc 0.); st y [ i ] (fc 0.);
            for_ 1 (c 0) (c n)
              [ st tmp [ i ] (ld tmp [ i ] +. (ld a [ i; j ] *. ld x [ j ]));
                st y [ i ] (ld y [ i ] +. (ld b [ i; j ] *. ld x [ j ])) ];
            st y [ i ] ((fc 1.5 *. ld tmp [ i ]) +. (fc 1.2 *. ld y [ i ])) ];
      ];
    out_arrays = [ y ];
  }

let symm n =
  let a = 0 and b = 1 and cc = 2 and temp2 = 3 in
  {
    name = "symm";
    arrays = [ (a, [ n; n ]); (b, [ n; n ]); (cc, [ n; n ]); (temp2, [ 1 ]) ];
    n_vars = 3;
    body =
      [ for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n)
          [ init2 a i j n 1; init2 b i j n 2; init2 cc i j n 3 ] ];
        for_ 0 (c 0) (c n)
          [ for_ 1 (c 0) (c n)
              [ st temp2 [ c 0 ] (fc 0.);
                for_ 2 (c 0) i
                  [ st cc [ k; j ]
                      (ld cc [ k; j ] +. (fc 1.5 *. ld b [ i; j ] *. ld a [ i; k ]));
                    st temp2 [ c 0 ]
                      (ld temp2 [ c 0 ] +. (ld b [ k; j ] *. ld a [ i; k ])) ];
                st cc [ i; j ]
                  ((fc 1.2 *. ld cc [ i; j ])
                  +. (fc 1.5 *. ld b [ i; j ] *. ld a [ i; i ])
                  +. (fc 1.5 *. ld temp2 [ c 0 ])) ] ];
      ];
    out_arrays = [ cc ];
  }

let syrk n =
  let a = 0 and cc = 1 in
  {
    name = "syrk";
    arrays = [ (a, [ n; n ]); (cc, [ n; n ]) ];
    n_vars = 3;
    body =
      [ for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n) [ init2 a i j n 1; init2 cc i j n 2 ] ];
        for_ 0 (c 0) (c n)
          [ for_ 1 (c 0) (i +! c 1) [ st cc [ i; j ] (ld cc [ i; j ] *. fc 1.2) ];
            for_ 2 (c 0) (c n)
              [ for_ 1 (c 0) (i +! c 1)
                  [ st cc [ i; j ]
                      (ld cc [ i; j ] +. (fc 1.5 *. ld a [ i; k ] *. ld a [ j; k ])) ] ] ];
      ];
    out_arrays = [ cc ];
  }

let syr2k n =
  let a = 0 and b = 1 and cc = 2 in
  {
    name = "syr2k";
    arrays = [ (a, [ n; n ]); (b, [ n; n ]); (cc, [ n; n ]) ];
    n_vars = 3;
    body =
      [ for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n)
          [ init2 a i j n 1; init2 b i j n 2; init2 cc i j n 3 ] ];
        for_ 0 (c 0) (c n)
          [ for_ 1 (c 0) (i +! c 1) [ st cc [ i; j ] (ld cc [ i; j ] *. fc 1.2) ];
            for_ 2 (c 0) (c n)
              [ for_ 1 (c 0) (i +! c 1)
                  [ st cc [ i; j ]
                      (ld cc [ i; j ]
                      +. (ld a [ j; k ] *. fc 1.5 *. ld b [ i; k ])
                      +. (ld b [ j; k ] *. fc 1.5 *. ld a [ i; k ])) ] ] ];
      ];
    out_arrays = [ cc ];
  }

let trmm n =
  let a = 0 and b = 1 in
  {
    name = "trmm";
    arrays = [ (a, [ n; n ]); (b, [ n; n ]) ];
    n_vars = 3;
    body =
      [ for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n) [ init2 a i j n 1; init2 b i j n 2 ] ];
        for_ 0 (c 0) (c n)
          [ for_ 1 (c 0) (c n)
              [ for_ 2 (i +! c 1) (c n)
                  [ st b [ i; j ] (ld b [ i; j ] +. (ld a [ k; i ] *. ld b [ k; j ])) ];
                st b [ i; j ] (fc 1.5 *. ld b [ i; j ]) ] ];
      ];
    out_arrays = [ b ];
  }

(* --- linear algebra: solvers --- *)

let cholesky n =
  let a = 0 in
  {
    name = "cholesky";
    arrays = [ (a, [ n; n ]) ];
    n_vars = 3;
    body =
      [ (* symmetric positive definite-ish init: dominant diagonal *)
        for_ 0 (c 0) (c n)
          [ for_ 1 (c 0) (c n)
              [ st a [ i; j ] (fi ((((i *! j) +! c 1) %! c n)) /. fi (c (2 * n))) ];
            st a [ i; i ] (fi (c n)) ];
        for_ 0 (c 0) (c n)
          [ for_ 1 (c 0) i
              [ for_ 2 (c 0) j
                  [ st a [ i; j ] (ld a [ i; j ] -. (ld a [ i; k ] *. ld a [ j; k ])) ];
                st a [ i; j ] (ld a [ i; j ] /. ld a [ j; j ]) ];
            for_ 2 (c 0) i
              [ st a [ i; i ] (ld a [ i; i ] -. (ld a [ i; k ] *. ld a [ i; k ])) ];
            st a [ i; i ] (Fsqrt (ld a [ i; i ])) ];
      ];
    out_arrays = [ a ];
  }

let durbin n =
  let r = 0 and y = 1 and z = 2 and alpha = 3 and beta = 4 and sum = 5 in
  {
    name = "durbin";
    arrays = [ (r, [ n ]); (y, [ n ]); (z, [ n ]); (alpha, [ 1 ]); (beta, [ 1 ]); (sum, [ 1 ]) ];
    n_vars = 3;
    body =
      [ for_ 0 (c 0) (c n) [ st r [ i ] (fi ((c (n + 1)) -! i) /. fi (c (2 * n))) ];
        st y [ c 0 ] (Fneg (ld r [ c 0 ]));
        st beta [ c 0 ] (fc 1.);
        st alpha [ c 0 ] (Fneg (ld r [ c 0 ]));
        for_ 2 (c 1) (c n)
          [ st beta [ c 0 ]
              ((fc 1. -. (ld alpha [ c 0 ] *. ld alpha [ c 0 ])) *. ld beta [ c 0 ]);
            st sum [ c 0 ] (fc 0.);
            for_ 0 (c 0) k
              [ st sum [ c 0 ] (ld sum [ c 0 ] +. (ld r [ k -! i -! c 1 ] *. ld y [ i ])) ];
            st alpha [ c 0 ]
              (Fneg ((ld r [ k ] +. ld sum [ c 0 ]) /. ld beta [ c 0 ]));
            for_ 0 (c 0) k
              [ st z [ i ] (ld y [ i ] +. (ld alpha [ c 0 ] *. ld y [ k -! i -! c 1 ])) ];
            for_ 0 (c 0) k [ st y [ i ] (ld z [ i ]) ];
            st y [ k ] (ld alpha [ c 0 ]) ];
      ];
    out_arrays = [ y ];
  }

let gramschmidt n =
  let a = 0 and q = 1 and r = 2 and nrm = 3 in
  {
    name = "gramschmidt";
    arrays = [ (a, [ n; n ]); (q, [ n; n ]); (r, [ n; n ]) ; (nrm, [ 1 ]) ];
    n_vars = 3;
    body =
      [ for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n)
          [ st a [ i; j ] ((fi (((i *! j) +! c 1) %! c n) /. fi (c n)) +. fc 0.5);
            st q [ i; j ] (fc 0.); st r [ i; j ] (fc 0.) ] ];
        for_ 2 (c 0) (c n)
          [ st nrm [ c 0 ] (fc 0.);
            for_ 0 (c 0) (c n)
              [ st nrm [ c 0 ] (ld nrm [ c 0 ] +. (ld a [ i; k ] *. ld a [ i; k ])) ];
            st r [ k; k ] (Fsqrt (ld nrm [ c 0 ]));
            for_ 0 (c 0) (c n) [ st q [ i; k ] (ld a [ i; k ] /. ld r [ k; k ]) ];
            for_ 1 (k +! c 1) (c n)
              [ st r [ k; j ] (fc 0.);
                for_ 0 (c 0) (c n)
                  [ st r [ k; j ] (ld r [ k; j ] +. (ld q [ i; k ] *. ld a [ i; j ])) ];
                for_ 0 (c 0) (c n)
                  [ st a [ i; j ] (ld a [ i; j ] -. (ld q [ i; k ] *. ld r [ k; j ])) ] ] ];
      ];
    out_arrays = [ r ];
  }

let lu n =
  let a = 0 in
  {
    name = "lu";
    arrays = [ (a, [ n; n ]) ];
    n_vars = 3;
    body =
      [ for_ 0 (c 0) (c n)
          [ for_ 1 (c 0) (c n)
              [ st a [ i; j ] (fi (((i *! j) +! c 1) %! c n) /. fi (c (2 * n))) ];
            st a [ i; i ] (fi (c n)) ];
        for_ 0 (c 0) (c n)
          [ for_ 1 (c 0) i
              [ for_ 2 (c 0) j
                  [ st a [ i; j ] (ld a [ i; j ] -. (ld a [ i; k ] *. ld a [ k; j ])) ];
                st a [ i; j ] (ld a [ i; j ] /. ld a [ j; j ]) ];
            for_ 1 i (c n)
              [ for_ 2 (c 0) i
                  [ st a [ i; j ] (ld a [ i; j ] -. (ld a [ i; k ] *. ld a [ k; j ])) ] ] ];
      ];
    out_arrays = [ a ];
  }

let ludcmp n =
  let a = 0 and b = 1 and x = 2 and y = 3 and w = 4 in
  {
    name = "ludcmp";
    arrays = [ (a, [ n; n ]); (b, [ n ]); (x, [ n ]); (y, [ n ]); (w, [ 1 ]) ];
    n_vars = 3;
    body =
      [ for_ 0 (c 0) (c n)
          [ init1 b i n 1; st x [ i ] (fc 0.); st y [ i ] (fc 0.);
            for_ 1 (c 0) (c n)
              [ st a [ i; j ] (fi (((i *! j) +! c 1) %! c n) /. fi (c (2 * n))) ];
            st a [ i; i ] (fi (c n)) ];
        (* decompose *)
        for_ 0 (c 0) (c n)
          [ for_ 1 (c 0) i
              [ st w [ c 0 ] (ld a [ i; j ]);
                for_ 2 (c 0) j
                  [ st w [ c 0 ] (ld w [ c 0 ] -. (ld a [ i; k ] *. ld a [ k; j ])) ];
                st a [ i; j ] (ld w [ c 0 ] /. ld a [ j; j ]) ];
            for_ 1 i (c n)
              [ st w [ c 0 ] (ld a [ i; j ]);
                for_ 2 (c 0) i
                  [ st w [ c 0 ] (ld w [ c 0 ] -. (ld a [ i; k ] *. ld a [ k; j ])) ];
                st a [ i; j ] (ld w [ c 0 ]) ] ];
        (* forward substitution *)
        for_ 0 (c 0) (c n)
          [ st w [ c 0 ] (ld b [ i ]);
            for_ 1 (c 0) i [ st w [ c 0 ] (ld w [ c 0 ] -. (ld a [ i; j ] *. ld y [ j ])) ];
            st y [ i ] (ld w [ c 0 ]) ];
        (* back substitution *)
        Ford (0, c 0, c n,
          [ st w [ c 0 ] (ld y [ i ]);
            for_ 1 (i +! c 1) (c n)
              [ st w [ c 0 ] (ld w [ c 0 ] -. (ld a [ i; j ] *. ld x [ j ])) ];
            st x [ i ] (ld w [ c 0 ] /. ld a [ i; i ]) ]);
      ];
    out_arrays = [ x ];
  }

let trisolv n =
  let ll = 0 and x = 1 and b = 2 in
  {
    name = "trisolv";
    arrays = [ (ll, [ n; n ]); (x, [ n ]); (b, [ n ]) ];
    n_vars = 2;
    body =
      [ for_ 0 (c 0) (c n)
          [ init1 b i n 1;
            for_ 1 (c 0) (i +! c 1)
              [ st ll [ i; j ] (fi (((i *! j) +! c 1) %! c n) /. fi (c (2 * n))) ];
            st ll [ i; i ] (fi (c n)) ];
        for_ 0 (c 0) (c n)
          [ st x [ i ] (ld b [ i ]);
            for_ 1 (c 0) i [ st x [ i ] (ld x [ i ] -. (ld ll [ i; j ] *. ld x [ j ])) ];
            st x [ i ] (ld x [ i ] /. ld ll [ i; i ]) ];
      ];
    out_arrays = [ x ];
  }

(* --- data mining --- *)

let correlation n =
  let data = 0 and corr = 1 and mean = 2 and stddev = 3 in
  {
    name = "correlation";
    arrays = [ (data, [ n; n ]); (corr, [ n; n ]); (mean, [ n ]); (stddev, [ n ]) ];
    n_vars = 3;
    body =
      [ for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n) [ init2 data i j n 1 ] ];
        for_ 1 (c 0) (c n)
          [ st mean [ j ] (fc 0.);
            for_ 0 (c 0) (c n) [ st mean [ j ] (ld mean [ j ] +. ld data [ i; j ]) ];
            st mean [ j ] (ld mean [ j ] /. fi (c n)) ];
        for_ 1 (c 0) (c n)
          [ st stddev [ j ] (fc 0.);
            for_ 0 (c 0) (c n)
              [ st stddev [ j ]
                  (ld stddev [ j ]
                  +. ((ld data [ i; j ] -. ld mean [ j ])
                     *. (ld data [ i; j ] -. ld mean [ j ]))) ];
            st stddev [ j ] (Fsqrt (ld stddev [ j ] /. fi (c n)));
            (* avoid zero stddev *)
            st stddev [ j ] (Fmax (ld stddev [ j ], fc 0.1)) ];
        for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n)
          [ st data [ i; j ]
              ((ld data [ i; j ] -. ld mean [ j ])
              /. (Fsqrt (fi (c n)) *. ld stddev [ j ])) ] ];
        for_ 0 (c 0) (c n)
          [ st corr [ i; i ] (fc 1.);
            for_ 1 (i +! c 1) (c n)
              [ st corr [ i; j ] (fc 0.);
                for_ 2 (c 0) (c n)
                  [ st corr [ i; j ]
                      (ld corr [ i; j ] +. (ld data [ k; i ] *. ld data [ k; j ])) ];
                st corr [ j; i ] (ld corr [ i; j ]) ] ];
      ];
    out_arrays = [ corr ];
  }

let covariance n =
  let data = 0 and cov = 1 and mean = 2 in
  {
    name = "covariance";
    arrays = [ (data, [ n; n ]); (cov, [ n; n ]); (mean, [ n ]) ];
    n_vars = 3;
    body =
      [ for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n) [ init2 data i j n 1 ] ];
        for_ 1 (c 0) (c n)
          [ st mean [ j ] (fc 0.);
            for_ 0 (c 0) (c n) [ st mean [ j ] (ld mean [ j ] +. ld data [ i; j ]) ];
            st mean [ j ] (ld mean [ j ] /. fi (c n)) ];
        for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n)
          [ st data [ i; j ] (ld data [ i; j ] -. ld mean [ j ]) ] ];
        for_ 0 (c 0) (c n)
          [ for_ 1 i (c n)
              [ st cov [ i; j ] (fc 0.);
                for_ 2 (c 0) (c n)
                  [ st cov [ i; j ]
                      (ld cov [ i; j ] +. (ld data [ k; i ] *. ld data [ k; j ])) ];
                st cov [ i; j ] (ld cov [ i; j ] /. fi (c (n - 1)));
                st cov [ j; i ] (ld cov [ i; j ]) ] ];
      ];
    out_arrays = [ cov ];
  }

(* --- medley --- *)

let deriche n =
  (* Edge-detection recursive filters; the exp-derived coefficients are
     computed on the host and embedded as constants (alpha = 0.25). *)
  let alpha = 0.25 in
  let e = Stdlib.exp (Stdlib.( ~-. ) alpha) in
  let e2 = Stdlib.exp (Stdlib.( *. ) (-2.) alpha) in
  let kcoef =
    Stdlib.( /. )
      (Stdlib.( *. )
         (Stdlib.( -. ) 1. e)
         (Stdlib.( -. ) 1. e))
      (Stdlib.( -. )
         (Stdlib.( +. ) 1. (Stdlib.( *. ) (Stdlib.( *. ) 2. alpha) e))
         e2)
  in
  let a1 = kcoef and a5 = kcoef in
  let a2 = Stdlib.( *. ) (Stdlib.( *. ) kcoef e) (Stdlib.( -. ) alpha 1.) in
  let a6 = a2 in
  let a3 = Stdlib.( *. ) (Stdlib.( *. ) kcoef e) (Stdlib.( +. ) alpha 1.) in
  let a7 = a3 in
  let a4 = Stdlib.( ~-. ) (Stdlib.( *. ) kcoef e2) in
  let a8 = a4 in
  let b1 = Stdlib.( *. ) 2. e in
  let b2 = Stdlib.( ~-. ) e2 in
  let img_in = 0 and img_out = 1 and y1 = 2 and y2 = 3 in
  {
    name = "deriche";
    arrays = [ (img_in, [ n; n ]); (img_out, [ n; n ]); (y1, [ n; n ]); (y2, [ n; n ]) ];
    n_vars = 2;
    body =
      [ for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n)
          [ st img_in [ i; j ] (fi (((c 313 *! i) +! (c 991 *! j)) %! c 65536) /. fc 65535.);
            st y1 [ i; j ] (fc 0.); st y2 [ i; j ] (fc 0.) ] ];
        (* horizontal pass *)
        for_ 0 (c 0) (c n)
          [ for_ 1 (c 2) (c n)
              [ st y1 [ i; j ]
                  ((fc a1 *. ld img_in [ i; j ])
                  +. (fc a2 *. ld img_in [ i; j -! c 1 ])
                  +. (fc b1 *. ld y1 [ i; j -! c 1 ])
                  +. (fc b2 *. ld y1 [ i; j -! c 2 ])) ] ];
        for_ 0 (c 0) (c n)
          [ Ford (1, c 0, c (n - 2),
              [ st y2 [ i; j ]
                  ((fc a3 *. ld img_in [ i; j +! c 1 ])
                  +. (fc a4 *. ld img_in [ i; j +! c 2 ])
                  +. (fc b1 *. ld y2 [ i; j +! c 1 ])
                  +. (fc b2 *. ld y2 [ i; j +! c 2 ])) ]) ];
        for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n)
          [ st img_out [ i; j ] (ld y1 [ i; j ] +. ld y2 [ i; j ]) ] ];
        (* vertical pass *)
        for_ 1 (c 0) (c n)
          [ for_ 0 (c 2) (c n)
              [ st y1 [ i; j ]
                  ((fc a5 *. ld img_out [ i; j ])
                  +. (fc a6 *. ld img_out [ i -! c 1; j ])
                  +. (fc b1 *. ld y1 [ i -! c 1; j ])
                  +. (fc b2 *. ld y1 [ i -! c 2; j ])) ] ];
        for_ 1 (c 0) (c n)
          [ Ford (0, c 0, c (n - 2),
              [ st y2 [ i; j ]
                  ((fc a7 *. ld img_out [ i +! c 1; j ])
                  +. (fc a8 *. ld img_out [ i +! c 2; j ])
                  +. (fc b1 *. ld y2 [ i +! c 1; j ])
                  +. (fc b2 *. ld y2 [ i +! c 2; j ])) ]) ];
        for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n)
          [ st img_out [ i; j ] (fc kcoef *. (ld y1 [ i; j ] +. ld y2 [ i; j ])) ] ];
      ];
    out_arrays = [ img_out ];
  }

let floyd_warshall n =
  let path = 0 in
  {
    name = "floyd-warshall";
    arrays = [ (path, [ n; n ]) ];
    n_vars = 3;
    body =
      [ for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n)
          [ st path [ i; j ] (fi (((i *! j) %! c 7) +! c 1));
            If (Ieq ((i +! j) %! c 13, c 0),
                [ st path [ i; j ] (fc 999.) ], []) ] ];
        for_ 2 (c 0) (c n) [ for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n)
          [ st path [ i; j ]
              (Fmin (ld path [ i; j ], ld path [ i; k ] +. ld path [ k; j ])) ] ] ];
      ];
    out_arrays = [ path ];
  }

let nussinov n =
  let seq = 0 and table = 1 in
  {
    name = "nussinov";
    arrays = [ (seq, [ n ]); (table, [ n; n ]) ];
    n_vars = 3;
    body =
      [ for_ 0 (c 0) (c n) [ st seq [ i ] (fi ((i +! c 1) %! c 4)) ];
        for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n) [ st table [ i; j ] (fc 0.) ] ];
        Ford (0, c 0, c n,
          [ for_ 1 (i +! c 1) (c n)
              [ If (Ile (c 0, j -! c 1),
                    [ st table [ i; j ] (Fmax (ld table [ i; j ], ld table [ i; j -! c 1 ])) ], []);
                If (Ile (i +! c 1, c (n - 1)),
                    [ st table [ i; j ] (Fmax (ld table [ i; j ], ld table [ i +! c 1; j ])) ], []);
                If (Ile (c 0, j -! c 1),
                    [ If (Ilt (i, j -! c 1),
                          [ If (Feq (ld seq [ i ] +. ld seq [ j ], fc 3.),
                                [ st table [ i; j ]
                                    (Fmax (ld table [ i; j ],
                                           ld table [ i +! c 1; j -! c 1 ] +. fc 1.)) ],
                                [ st table [ i; j ]
                                    (Fmax (ld table [ i; j ], ld table [ i +! c 1; j -! c 1 ])) ]) ],
                          [ st table [ i; j ]
                              (Fmax (ld table [ i; j ], ld table [ i +! c 1; j -! c 1 ])) ]) ], []);
                for_ 2 (i +! c 1) j
                  [ st table [ i; j ]
                      (Fmax (ld table [ i; j ], ld table [ i; k ] +. ld table [ k +! c 1; j ])) ] ] ]);
      ];
    out_arrays = [ table ];
  }

(* --- stencils --- *)

let jacobi_1d ~tsteps n =
  let a = 0 and b = 1 in
  {
    name = "jacobi-1d";
    arrays = [ (a, [ n ]); (b, [ n ]) ];
    n_vars = 2;
    body =
      [ for_ 0 (c 0) (c n)
          [ st a [ i ] (fi (i +! c 2) /. fi (c n));
            st b [ i ] (fi (i +! c 3) /. fi (c n)) ];
        for_ 1 (c 0) (c tsteps)
          [ for_ 0 (c 1) (c (n - 1))
              [ st b [ i ]
                  (fc 0.33333 *. (ld a [ i -! c 1 ] +. ld a [ i ] +. ld a [ i +! c 1 ])) ];
            for_ 0 (c 1) (c (n - 1))
              [ st a [ i ]
                  (fc 0.33333 *. (ld b [ i -! c 1 ] +. ld b [ i ] +. ld b [ i +! c 1 ])) ] ];
      ];
    out_arrays = [ a ];
  }

let jacobi_2d ~tsteps n =
  let a = 0 and b = 1 in
  let stencil src dst =
    for_ 0 (c 1) (c (n - 1)) [ for_ 1 (c 1) (c (n - 1))
      [ st dst [ i; j ]
          (fc 0.2
          *. (ld src [ i; j ] +. ld src [ i; j -! c 1 ] +. ld src [ i; j +! c 1 ]
             +. ld src [ i +! c 1; j ] +. ld src [ i -! c 1; j ])) ] ]
  in
  {
    name = "jacobi-2d";
    arrays = [ (a, [ n; n ]); (b, [ n; n ]) ];
    n_vars = 3;
    body =
      [ for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n)
          [ st a [ i; j ] (fi ((i *! (j +! c 2)) +! c 2) /. fi (c n));
            st b [ i; j ] (fi ((i *! (j +! c 3)) +! c 3) /. fi (c n)) ] ];
        for_ 2 (c 0) (c tsteps) [ stencil a b; stencil b a ];
      ];
    out_arrays = [ a ];
  }

let seidel_2d ~tsteps n =
  let a = 0 in
  {
    name = "seidel-2d";
    arrays = [ (a, [ n; n ]) ];
    n_vars = 3;
    body =
      [ for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n)
          [ st a [ i; j ] (fi ((i *! (j +! c 2)) +! c 2) /. fi (c n)) ] ];
        for_ 2 (c 0) (c tsteps)
          [ for_ 0 (c 1) (c (n - 1)) [ for_ 1 (c 1) (c (n - 1))
              [ st a [ i; j ]
                  ((ld a [ i -! c 1; j -! c 1 ] +. ld a [ i -! c 1; j ]
                   +. ld a [ i -! c 1; j +! c 1 ] +. ld a [ i; j -! c 1 ]
                   +. ld a [ i; j ] +. ld a [ i; j +! c 1 ]
                   +. ld a [ i +! c 1; j -! c 1 ] +. ld a [ i +! c 1; j ]
                   +. ld a [ i +! c 1; j +! c 1 ])
                  /. fc 9.) ] ] ];
      ];
    out_arrays = [ a ];
  }

let fdtd_2d ~tsteps n =
  let ex = 0 and ey = 1 and hz = 2 and fict = 3 in
  {
    name = "fdtd-2d";
    arrays = [ (ex, [ n; n ]); (ey, [ n; n ]); (hz, [ n; n ]); (fict, [ tsteps ]) ];
    n_vars = 3;
    body =
      [ for_ 0 (c 0) (c tsteps) [ st fict [ i ] (fi i) ];
        for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n)
          [ st ex [ i; j ] (fi (i *! (j +! c 1)) /. fi (c n));
            st ey [ i; j ] (fi (i *! (j +! c 2)) /. fi (c n));
            st hz [ i; j ] (fi (i *! (j +! c 3)) /. fi (c n)) ] ];
        for_ 2 (c 0) (c tsteps)
          [ for_ 1 (c 0) (c n) [ st ey [ c 0; j ] (ld fict [ k ]) ];
            for_ 0 (c 1) (c n) [ for_ 1 (c 0) (c n)
              [ st ey [ i; j ]
                  (ld ey [ i; j ] -. (fc 0.5 *. (ld hz [ i; j ] -. ld hz [ i -! c 1; j ]))) ] ];
            for_ 0 (c 0) (c n) [ for_ 1 (c 1) (c n)
              [ st ex [ i; j ]
                  (ld ex [ i; j ] -. (fc 0.5 *. (ld hz [ i; j ] -. ld hz [ i; j -! c 1 ]))) ] ];
            for_ 0 (c 0) (c (n - 1)) [ for_ 1 (c 0) (c (n - 1))
              [ st hz [ i; j ]
                  (ld hz [ i; j ]
                  -. (fc 0.7
                     *. (ld ex [ i; j +! c 1 ] -. ld ex [ i; j ]
                        +. ld ey [ i +! c 1; j ] -. ld ey [ i; j ]))) ] ] ];
      ];
    out_arrays = [ hz ];
  }

let heat_3d ~tsteps n =
  let a = 0 and b = 1 in
  let stencil src dst =
    for_ 0 (c 1) (c (n - 1)) [ for_ 1 (c 1) (c (n - 1)) [ for_ 2 (c 1) (c (n - 1))
      [ st dst [ i; j; k ]
          ((fc 0.125
           *. (ld src [ i +! c 1; j; k ] -. (fc 2. *. ld src [ i; j; k ])
              +. ld src [ i -! c 1; j; k ]))
          +. (fc 0.125
             *. (ld src [ i; j +! c 1; k ] -. (fc 2. *. ld src [ i; j; k ])
                +. ld src [ i; j -! c 1; k ]))
          +. (fc 0.125
             *. (ld src [ i; j; k +! c 1 ] -. (fc 2. *. ld src [ i; j; k ])
                +. ld src [ i; j; k -! c 1 ]))
          +. ld src [ i; j; k ]) ] ] ]
  in
  {
    name = "heat-3d";
    arrays = [ (a, [ n; n; n ]); (b, [ n; n; n ]) ];
    n_vars = 4;
    body =
      [ for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n) [ for_ 2 (c 0) (c n)
          [ st a [ i; j; k ] (fi ((i +! j) +! ((c n) -! k)) /. fi (c (10 * n)));
            st b [ i; j; k ] (fi ((i +! j) +! ((c n) -! k)) /. fi (c (10 * n))) ] ] ];
        for_ 3 (c 0) (c tsteps) [ stencil a b; stencil b a ];
      ];
    out_arrays = [ a ];
  }

let adi ~tsteps n =
  (* simplified ADI with constant coefficients *)
  let u = 0 and v = 1 and p = 2 and q = 3 in
  let a = 0.2 and b_ = 0.4 and c_ = 0.2 and d = 0.4 and e_ = 0.2 and f_ = 0.4 in
  {
    name = "adi";
    arrays = [ (u, [ n; n ]); (v, [ n; n ]); (p, [ n; n ]); (q, [ n; n ]) ];
    n_vars = 3;
    body =
      [ for_ 0 (c 0) (c n) [ for_ 1 (c 0) (c n)
          [ st u [ i; j ] (fi (i +! ((c n) -! j)) /. fi (c n));
            st v [ i; j ] (fc 0.); st p [ i; j ] (fc 0.); st q [ i; j ] (fc 0.) ] ];
        for_ 2 (c 0) (c tsteps)
          [ (* column sweep *)
            for_ 0 (c 1) (c (n - 1))
              [ st v [ c 0; i ] (fc 1.);
                st p [ i; c 0 ] (fc 0.);
                st q [ i; c 0 ] (ld v [ c 0; i ]);
                for_ 1 (c 1) (c (n - 1))
                  [ st p [ i; j ] (Fneg (fc c_) /. ((fc a *. ld p [ i; j -! c 1 ]) +. fc b_));
                    st q [ i; j ]
                      (((Fneg (fc d) *. ld u [ j; i -! c 1 ])
                       +. ((fc 1. +. (fc 2. *. fc d)) *. ld u [ j; i ])
                       -. (fc f_ *. ld u [ j; i +! c 1 ])
                       -. (fc a *. ld q [ i; j -! c 1 ]))
                      /. ((fc a *. ld p [ i; j -! c 1 ]) +. fc b_)) ];
                st v [ c (n - 1); i ] (fc 1.);
                Ford (1, c 1, c (n - 1),
                  [ st v [ j; i ] ((ld p [ i; j ] *. ld v [ j +! c 1; i ]) +. ld q [ i; j ]) ]) ];
            (* row sweep *)
            for_ 0 (c 1) (c (n - 1))
              [ st u [ i; c 0 ] (fc 1.);
                st p [ i; c 0 ] (fc 0.);
                st q [ i; c 0 ] (ld u [ i; c 0 ]);
                for_ 1 (c 1) (c (n - 1))
                  [ st p [ i; j ] (Fneg (fc f_) /. ((fc d *. ld p [ i; j -! c 1 ]) +. fc e_));
                    st q [ i; j ]
                      (((Fneg (fc a) *. ld v [ i -! c 1; j ])
                       +. ((fc 1. +. (fc 2. *. fc a)) *. ld v [ i; j ])
                       -. (fc c_ *. ld v [ i +! c 1; j ])
                       -. (fc d *. ld q [ i; j -! c 1 ]))
                      /. ((fc d *. ld p [ i; j -! c 1 ]) +. fc e_)) ];
                st u [ i; c (n - 1) ] (fc 1.);
                Ford (1, c 1, c (n - 1),
                  [ st u [ i; j ] ((ld p [ i; j ] *. ld u [ i; j +! c 1 ]) +. ld q [ i; j ]) ]) ] ];
      ];
    out_arrays = [ u ];
  }

(* The full suite with interpreter-friendly default sizes. *)
let all ?(scale = 1.0) () =
  let s n = max 4 (int_of_float (Float.round (Stdlib.( *. ) (float_of_int n) scale))) in
  [ correlation (s 28); covariance (s 28);
    two_mm (s 24); three_mm (s 22); atax (s 48); bicg (s 48); doitgen (s 12);
    mvt (s 48); gemm (s 24); gemver (s 40); gesummv (s 48); symm (s 24);
    syr2k (s 22); syrk (s 24); trmm (s 24); cholesky (s 28); durbin (s 60);
    gramschmidt (s 24); lu (s 26); ludcmp (s 26); trisolv (s 60);
    deriche (s 32); floyd_warshall (s 20); nussinov (s 24);
    adi ~tsteps:(s 6) (s 20); fdtd_2d ~tsteps:(s 8) (s 20);
    heat_3d ~tsteps:(s 6) (s 10); jacobi_1d ~tsteps:(s 20) (s 120);
    jacobi_2d ~tsteps:(s 8) (s 20); seidel_2d ~tsteps:(s 8) (s 20) ]

let find name = List.find_opt (fun k -> k.name = name)
