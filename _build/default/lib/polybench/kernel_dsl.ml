(* A small loop-nest language in which the PolyBench/C kernels are
   written once and executed two ways:

   - compiled to OCaml closures over flat float arrays (the "native"
     baseline of Fig 3), and
   - compiled to a genuine WebAssembly module through {!Twine_wasm.Builder}
     (the artifact the Wasm engines execute),

   so the two implementations are derived from the same source and their
   outputs can be cross-checked element by element. *)

open Twine_wasm
open Twine_wasm.Ast

type iexp =
  | Ic of int
  | Iv of int  (* loop variable *)
  | Iadd of iexp * iexp
  | Isub of iexp * iexp
  | Imul of iexp * iexp
  | Imod of iexp * iexp

type fexp =
  | Fc of float
  | Fload of int * iexp list  (* array id, indices *)
  | Fof_i of iexp
  | Fadd of fexp * fexp
  | Fsub of fexp * fexp
  | Fmul of fexp * fexp
  | Fdiv of fexp * fexp
  | Fneg of fexp
  | Fsqrt of fexp
  | Fabs of fexp
  | Fmax of fexp * fexp
  | Fmin of fexp * fexp

type bcond =
  | Ieq of iexp * iexp
  | Ile of iexp * iexp
  | Ilt of iexp * iexp
  | Feq of fexp * fexp
  | Fgt of fexp * fexp

type stmt =
  | Store of int * iexp list * fexp
  | For of int * iexp * iexp * stmt list  (* var, lo, hi (exclusive) *)
  | Ford of int * iexp * iexp * stmt list  (* var from hi-1 downto lo *)
  | If of bcond * stmt list * stmt list

type kernel = {
  name : string;
  arrays : (int * int list) list;  (* array id -> dimension sizes *)
  n_vars : int;  (* loop variables, ids 0..n_vars-1 *)
  body : stmt list;  (* includes data initialisation *)
  out_arrays : int list;  (* arrays whose content is the kernel's result *)
}

let array_size dims = List.fold_left ( * ) 1 dims

let dims_of k id =
  match List.assoc_opt id k.arrays with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "%s: unknown array %d" k.name id)

(* --- native execution: closure compilation over float arrays --- *)

let rec comp_i (e : iexp) : int array -> int =
  match e with
  | Ic n -> fun _ -> n
  | Iv k -> fun vars -> vars.(k)
  | Iadd (a, b) ->
      let ca = comp_i a and cb = comp_i b in
      fun v -> ca v + cb v
  | Isub (a, b) ->
      let ca = comp_i a and cb = comp_i b in
      fun v -> ca v - cb v
  | Imul (a, b) ->
      let ca = comp_i a and cb = comp_i b in
      fun v -> ca v * cb v
  | Imod (a, b) ->
      let ca = comp_i a and cb = comp_i b in
      fun v -> ca v mod cb v

let flat_index dims idx_fns vars =
  let rec go dims fns acc =
    match (dims, fns) with
    | [], [] -> acc
    | d :: drest, f :: frest -> go drest frest ((acc * d) + f vars)
    | _ -> invalid_arg "index arity mismatch"
  in
  match (dims, idx_fns) with
  | d0 :: drest, f0 :: frest ->
      ignore d0;
      go drest frest (f0 vars)
  | _ -> invalid_arg "index arity mismatch"

let comp_native k =
  let arrays =
    List.map (fun (id, dims) -> (id, Array.make (array_size dims) 0.)) k.arrays
  in
  let arr id = List.assoc id arrays in
  let rec comp_f (e : fexp) : int array -> float =
    match e with
    | Fc c -> fun _ -> c
    | Fload (id, idx) ->
        let a = arr id and dims = dims_of k id in
        let fns = List.map comp_i idx in
        fun v -> a.(flat_index dims fns v)
    | Fof_i e ->
        let c = comp_i e in
        fun v -> float_of_int (c v)
    | Fadd (a, b) ->
        let ca = comp_f a and cb = comp_f b in
        fun v -> ca v +. cb v
    | Fsub (a, b) ->
        let ca = comp_f a and cb = comp_f b in
        fun v -> ca v -. cb v
    | Fmul (a, b) ->
        let ca = comp_f a and cb = comp_f b in
        fun v -> ca v *. cb v
    | Fdiv (a, b) ->
        let ca = comp_f a and cb = comp_f b in
        fun v -> ca v /. cb v
    | Fneg a ->
        let c = comp_f a in
        fun v -> -.c v
    | Fsqrt a ->
        let c = comp_f a in
        fun v -> Float.sqrt (c v)
    | Fabs a ->
        let c = comp_f a in
        fun v -> Float.abs (c v)
    | Fmax (a, b) ->
        let ca = comp_f a and cb = comp_f b in
        fun v ->
          let x = ca v and y = cb v in
          if x >= y then x else y
    | Fmin (a, b) ->
        let ca = comp_f a and cb = comp_f b in
        fun v ->
          let x = ca v and y = cb v in
          if x <= y then x else y
  in
  let comp_b = function
    | Ieq (a, b) ->
        let ca = comp_i a and cb = comp_i b in
        fun v -> ca v = cb v
    | Ile (a, b) ->
        let ca = comp_i a and cb = comp_i b in
        fun v -> ca v <= cb v
    | Ilt (a, b) ->
        let ca = comp_i a and cb = comp_i b in
        fun v -> ca v < cb v
    | Feq (a, b) ->
        let ca = comp_f a and cb = comp_f b in
        fun v -> ca v = cb v
    | Fgt (a, b) ->
        let ca = comp_f a and cb = comp_f b in
        fun v -> ca v > cb v
  in
  let rec comp_stmt (s : stmt) : int array -> unit =
    match s with
    | Store (id, idx, e) ->
        let a = arr id and dims = dims_of k id in
        let fns = List.map comp_i idx in
        let ce = comp_f e in
        fun v -> a.(flat_index dims fns v) <- ce v
    | For (var, lo, hi, body) ->
        let clo = comp_i lo and chi = comp_i hi in
        let cb = comp_seq body in
        fun v ->
          let h = chi v in
          let i = ref (clo v) in
          while !i < h do
            v.(var) <- !i;
            cb v;
            incr i
          done
    | Ford (var, lo, hi, body) ->
        let clo = comp_i lo and chi = comp_i hi in
        let cb = comp_seq body in
        fun v ->
          let l = clo v in
          let i = ref (chi v - 1) in
          while !i >= l do
            v.(var) <- !i;
            cb v;
            decr i
          done
    | If (c, t, e) ->
        let cc = comp_b c and ct = comp_seq t and ce = comp_seq e in
        fun v -> if cc v then ct v else ce v
  and comp_seq body =
    let cs = Array.of_list (List.map comp_stmt body) in
    fun v -> Array.iter (fun f -> f v) cs
  in
  let prog = comp_seq k.body in
  let run () =
    List.iter (fun (_, a) -> Array.fill a 0 (Array.length a) 0.) arrays;
    prog (Array.make (max 1 k.n_vars) 0)
  in
  (run, fun id -> arr id)

(* --- Wasm code generation --- *)

type layout = { bases : (int * int) list; total_bytes : int }

let layout_of k =
  let bases, total =
    List.fold_left
      (fun (acc, off) (id, dims) -> ((id, off) :: acc, off + (8 * array_size dims)))
      ([], 0) k.arrays
  in
  { bases = List.rev bases; total_bytes = total }

let comp_wasm k =
  let lay = layout_of k in
  let base id = List.assoc id lay.bases in
  let rec gi (e : iexp) : instr list =
    match e with
    | Ic n -> [ Builder.i32 n ]
    | Iv v -> [ Local_get v ]
    | Iadd (a, b) -> gi a @ gi b @ [ I32_binop Add ]
    | Isub (a, b) -> gi a @ gi b @ [ I32_binop Sub ]
    | Imul (a, b) -> gi a @ gi b @ [ I32_binop Mul ]
    | Imod (a, b) -> gi a @ gi b @ [ I32_binop Rem_s ]
  in
  (* flattened element address: (((i0*d1+i1)*d2+i2)...)*8 + base *)
  let addr id idx =
    let dims = dims_of k id in
    let rec go dims idx acc =
      match (dims, idx) with
      | [], [] -> acc
      | d :: drest, i :: irest ->
          go drest irest (acc @ [ Builder.i32 d; I32_binop Mul ] @ gi i @ [ I32_binop Add ])
      | _ -> invalid_arg "index arity mismatch"
    in
    let flat =
      match (dims, idx) with
      | _ :: drest, i0 :: irest -> go drest irest (gi i0)
      | _ -> invalid_arg "index arity mismatch"
    in
    flat @ [ Builder.i32 8; I32_binop Mul; Builder.i32 (base id); I32_binop Add ]
  in
  let rec gf (e : fexp) : instr list =
    match e with
    | Fc c -> [ F64_const c ]
    | Fload (id, idx) -> addr id idx @ [ F64_load { offset = 0; align = 3 } ]
    | Fof_i e -> gi e @ [ Cvt F64_convert_i32_s ]
    | Fadd (a, b) -> gf a @ gf b @ [ F64_binop Fadd ]
    | Fsub (a, b) -> gf a @ gf b @ [ F64_binop Fsub ]
    | Fmul (a, b) -> gf a @ gf b @ [ F64_binop Fmul ]
    | Fdiv (a, b) -> gf a @ gf b @ [ F64_binop Fdiv ]
    | Fneg a -> gf a @ [ F64_unop Neg ]
    | Fsqrt a -> gf a @ [ F64_unop Sqrt ]
    | Fabs a -> gf a @ [ F64_unop Abs ]
    | Fmax (a, b) -> gf a @ gf b @ [ F64_binop Twine_wasm.Ast.Fmax ]
    | Fmin (a, b) -> gf a @ gf b @ [ F64_binop Twine_wasm.Ast.Fmin ]
  in
  let gb = function
    | Ieq (a, b) -> gi a @ gi b @ [ I32_relop Eq ]
    | Ile (a, b) -> gi a @ gi b @ [ I32_relop Le_s ]
    | Ilt (a, b) -> gi a @ gi b @ [ I32_relop Lt_s ]
    | Feq (a, b) -> gf a @ gf b @ [ F64_relop Twine_wasm.Ast.Feq ]
    | Fgt (a, b) -> gf a @ gf b @ [ F64_relop Twine_wasm.Ast.Fgt ]
  in
  let rec gs (s : stmt) : instr list =
    match s with
    | Store (id, idx, e) -> addr id idx @ gf e @ [ F64_store { offset = 0; align = 3 } ]
    | For (var, lo, hi, body) ->
        Builder.for_ ~local:var ~start:(gi lo) ~bound:(gi hi) (gseq body)
    | Ford (var, lo, hi, body) ->
        (* var = hi-1; loop { if var < lo break; body; var-- } *)
        gi hi
        @ [ Builder.i32 1; I32_binop Sub; Local_set var;
            Block
              ( None,
                [ Loop
                    ( None,
                      [ Local_get var ] @ gi lo
                      @ [ I32_relop Lt_s; Br_if 1 ]
                      @ gseq body
                      @ [ Local_get var; Builder.i32 1; I32_binop Sub;
                          Local_set var; Br 0 ] );
                ] );
          ]
    | If (c, t, e) -> gb c @ [ Twine_wasm.Ast.If (None, gseq t, gseq e) ]
  and gseq body = List.concat_map gs body in
  let b = Builder.create () in
  let pages = ((lay.total_bytes + Types.page_size - 1) / Types.page_size) + 1 in
  Builder.add_memory b ~export:"memory" pages;
  ignore
    (Builder.add_func b ~name:"kernel" ~params:[] ~results:[]
       ~locals:(List.init (max 1 k.n_vars) (fun _ -> Types.I32))
       (gseq k.body));
  (Builder.build b, lay)

(* Read an output array back from a Wasm instance's linear memory. *)
let read_wasm_array inst lay k id =
  let mem =
    match Instance.export_memory inst "memory" with
    | Some m -> m
    | None -> invalid_arg "kernel module has no memory"
  in
  let base = List.assoc id lay.bases in
  let n = array_size (dims_of k id) in
  Array.init n (fun i -> Int64.float_of_bits (Memory.load64 mem (base + (8 * i))))
