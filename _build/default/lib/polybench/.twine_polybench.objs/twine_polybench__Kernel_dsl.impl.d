lib/polybench/kernel_dsl.ml: Array Builder Float Instance Int64 List Memory Printf Twine_wasm Types
