lib/polybench/kernels.ml: Float Kernel_dsl List Stdlib
