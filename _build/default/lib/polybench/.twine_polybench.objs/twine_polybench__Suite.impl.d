lib/polybench/suite.ml: Aot Array Float Int64 Interp Kernel_dsl List Twine_wasm Unix
