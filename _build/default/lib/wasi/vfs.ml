(* Host file-system abstraction behind the WASI layer.

   A WASI context is wired to one or more preopened [dir]s. The records of
   functions below are the seam where TWINE swaps implementations: tests
   use [memory ()], plain WAMR-style runs use [os root], and the trusted
   runtime plugs in an IPFS-backed implementation (see Twine.Sgx_host) so
   the same application code transparently gets encrypted persistence. *)

type filetype = Regular | Directory | Char_device | Unknown

type filestat = { st_size : int; st_filetype : filetype }

type file = {
  f_read : Bytes.t -> off:int -> len:int -> (int, int) result;
  f_pread : Bytes.t -> off:int -> len:int -> pos:int -> (int, int) result;
  f_write : string -> (int, int) result;
  f_pwrite : string -> pos:int -> (int, int) result;
  f_seek : offset:int -> whence:[ `Set | `Cur | `End ] -> (int, int) result;
  f_tell : unit -> int;
  f_size : unit -> int;
  f_set_size : int -> (unit, int) result;
  f_sync : unit -> unit;
  f_close : unit -> unit;
}

type dir = {
  d_open :
    string -> create:bool -> trunc:bool -> excl:bool -> append:bool ->
    (file, int) result;
  d_unlink : string -> (unit, int) result;
  d_create_dir : string -> (unit, int) result;
  d_remove_dir : string -> (unit, int) result;
  d_rename : string -> string -> (unit, int) result;
  d_stat : string -> (filestat, int) result;
  d_list : string -> ((string * filetype) list, int) result;
}

(* Reject absolute paths and any traversal that could escape the preopen
   (the WASI capability model; cf. the paper's chroot comparison). *)
let sanitize path =
  if path = "" then Error Errno.einval
  else if path.[0] = '/' then Error Errno.enotcapable
  else begin
    let parts = String.split_on_char '/' path in
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | "" :: rest | "." :: rest -> resolve acc rest
      | ".." :: rest -> (
          match acc with
          | [] -> Error Errno.enotcapable
          | _ :: up -> resolve up rest)
      | seg :: rest -> resolve (seg :: acc) rest
    in
    match resolve [] parts with
    | Ok [] -> Error Errno.einval
    | Ok segs -> Ok (String.concat "/" segs)
    | Error e -> Error e
  end

(* --- In-memory filesystem --- *)

type mem_node = Mem_file of Buffer.t | Mem_dir

let memory () =
  let tbl : (string, mem_node) Hashtbl.t = Hashtbl.create 16 in
  let rec make_dir () =
    {
      d_open =
        (fun path ~create ~trunc ~excl ~append ->
          match sanitize path with
          | Error e -> Error e
          | Ok path -> (
              match Hashtbl.find_opt tbl path with
              | Some Mem_dir -> Error Errno.eisdir
              | Some (Mem_file _) when excl -> Error Errno.eexist
              | Some (Mem_file buf) ->
                  if trunc then Buffer.clear buf;
                  Ok (mem_file buf ~append)
              | None ->
                  if not create then Error Errno.enoent
                  else begin
                    let buf = Buffer.create 64 in
                    Hashtbl.replace tbl path (Mem_file buf);
                    Ok (mem_file buf ~append)
                  end));
      d_unlink =
        (fun path ->
          match sanitize path with
          | Error e -> Error e
          | Ok path -> (
              match Hashtbl.find_opt tbl path with
              | Some (Mem_file _) ->
                  Hashtbl.remove tbl path;
                  Ok ()
              | Some Mem_dir -> Error Errno.eisdir
              | None -> Error Errno.enoent));
      d_create_dir =
        (fun path ->
          match sanitize path with
          | Error e -> Error e
          | Ok path ->
              if Hashtbl.mem tbl path then Error Errno.eexist
              else begin
                Hashtbl.replace tbl path Mem_dir;
                Ok ()
              end);
      d_remove_dir =
        (fun path ->
          match sanitize path with
          | Error e -> Error e
          | Ok path -> (
              match Hashtbl.find_opt tbl path with
              | Some Mem_dir ->
                  let prefix = path ^ "/" in
                  let occupied =
                    Hashtbl.fold
                      (fun k _ acc ->
                        acc || String.length k > String.length prefix
                               && String.sub k 0 (String.length prefix) = prefix)
                      tbl false
                  in
                  if occupied then Error Errno.enotempty
                  else begin
                    Hashtbl.remove tbl path;
                    Ok ()
                  end
              | Some (Mem_file _) -> Error Errno.enotdir
              | None -> Error Errno.enoent));
      d_rename =
        (fun from to_ ->
          match (sanitize from, sanitize to_) with
          | Error e, _ | _, Error e -> Error e
          | Ok from, Ok to_ -> (
              match Hashtbl.find_opt tbl from with
              | None -> Error Errno.enoent
              | Some node ->
                  Hashtbl.remove tbl from;
                  Hashtbl.replace tbl to_ node;
                  Ok ()));
      d_stat =
        (fun path ->
          match sanitize path with
          | Error e -> Error e
          | Ok path -> (
              match Hashtbl.find_opt tbl path with
              | Some (Mem_file b) ->
                  Ok { st_size = Buffer.length b; st_filetype = Regular }
              | Some Mem_dir -> Ok { st_size = 0; st_filetype = Directory }
              | None -> Error Errno.enoent));
      d_list =
        (fun prefix ->
          let prefix = if prefix = "" || prefix = "." then "" else prefix ^ "/" in
          let entries =
            Hashtbl.fold
              (fun k node acc ->
                if String.length k >= String.length prefix
                   && String.sub k 0 (String.length prefix) = prefix
                then begin
                  let rest = String.sub k (String.length prefix)
                               (String.length k - String.length prefix) in
                  if rest <> "" && not (String.contains rest '/') then
                    (rest, match node with Mem_file _ -> Regular | Mem_dir -> Directory)
                    :: acc
                  else acc
                end
                else acc)
              tbl []
          in
          Ok (List.sort compare entries));
    }
  and mem_file buf ~append =
    let pos = ref (if append then Buffer.length buf else 0) in
    {
      f_read =
        (fun dst ~off ~len ->
          let n = Buffer.length buf in
          if !pos >= n then Ok 0
          else begin
            let take = min len (n - !pos) in
            Bytes.blit_string (Buffer.contents buf) !pos dst off take;
            pos := !pos + take;
            Ok take
          end);
      f_pread =
        (fun dst ~off ~len ~pos:p ->
          let n = Buffer.length buf in
          if p >= n then Ok 0
          else begin
            let take = min len (n - p) in
            Bytes.blit_string (Buffer.contents buf) p dst off take;
            Ok take
          end);
      f_write =
        (fun data ->
          let n = Buffer.length buf in
          if !pos = n then Buffer.add_string buf data
          else begin
            (* overwrite in the middle: rebuild *)
            let current = Buffer.contents buf in
            let endpos = !pos + String.length data in
            let out = Bytes.make (max n endpos) '\000' in
            Bytes.blit_string current 0 out 0 n;
            Bytes.blit_string data 0 out !pos (String.length data);
            Buffer.clear buf;
            Buffer.add_bytes buf out
          end;
          pos := !pos + String.length data;
          Ok (String.length data));
      f_pwrite =
        (fun data ~pos:p ->
          let n = Buffer.length buf in
          let endpos = p + String.length data in
          let out = Bytes.make (max n endpos) '\000' in
          Bytes.blit_string (Buffer.contents buf) 0 out 0 n;
          Bytes.blit_string data 0 out p (String.length data);
          Buffer.clear buf;
          Buffer.add_bytes buf out;
          Ok (String.length data));
      f_seek =
        (fun ~offset ~whence ->
          let base =
            match whence with `Set -> 0 | `Cur -> !pos | `End -> Buffer.length buf
          in
          let target = base + offset in
          if target < 0 then Error Errno.einval
          else begin
            pos := target;
            Ok target
          end);
      f_tell = (fun () -> !pos);
      f_size = (fun () -> Buffer.length buf);
      f_set_size =
        (fun n ->
          let current = Buffer.contents buf in
          Buffer.clear buf;
          if n <= String.length current then Buffer.add_string buf (String.sub current 0 n)
          else begin
            Buffer.add_string buf current;
            Buffer.add_string buf (String.make (n - String.length current) '\000')
          end;
          Ok ());
      f_sync = (fun () -> ());
      f_close = (fun () -> ());
    }
  in
  make_dir ()

(* --- OS-rooted filesystem --- *)

let errno_of_unix = function
  | Unix.ENOENT -> Errno.enoent
  | Unix.EACCES -> Errno.eacces
  | Unix.EEXIST -> Errno.eexist
  | Unix.EISDIR -> Errno.eisdir
  | Unix.ENOTDIR -> Errno.enotdir
  | Unix.ENOTEMPTY -> Errno.enotempty
  | Unix.EINVAL -> Errno.einval
  | Unix.EMFILE -> Errno.emfile
  | Unix.ENOSPC -> Errno.enospc
  | Unix.EPERM -> Errno.eperm
  | _ -> Errno.eio

let catch_unix f = try f () with Unix.Unix_error (e, _, _) -> Error (errno_of_unix e)

let os root =
  if not (Sys.file_exists root) then Unix.mkdir root 0o755;
  let resolve path =
    match sanitize path with
    | Error e -> Error e
    | Ok p -> Ok (Filename.concat root p)
  in
  let os_file fd =
    let closed = ref false in
    {
      f_read =
        (fun dst ~off ~len ->
          catch_unix (fun () -> Ok (Unix.read fd dst off len)));
      f_pread =
        (fun dst ~off ~len ~pos ->
          catch_unix (fun () ->
              let saved = Unix.lseek fd 0 Unix.SEEK_CUR in
              ignore (Unix.lseek fd pos Unix.SEEK_SET);
              let n = Unix.read fd dst off len in
              ignore (Unix.lseek fd saved Unix.SEEK_SET);
              Ok n));
      f_write =
        (fun data ->
          catch_unix (fun () ->
              Ok (Unix.write_substring fd data 0 (String.length data))));
      f_pwrite =
        (fun data ~pos ->
          catch_unix (fun () ->
              let saved = Unix.lseek fd 0 Unix.SEEK_CUR in
              ignore (Unix.lseek fd pos Unix.SEEK_SET);
              let n = Unix.write_substring fd data 0 (String.length data) in
              ignore (Unix.lseek fd saved Unix.SEEK_SET);
              Ok n));
      f_seek =
        (fun ~offset ~whence ->
          let w =
            match whence with
            | `Set -> Unix.SEEK_SET
            | `Cur -> Unix.SEEK_CUR
            | `End -> Unix.SEEK_END
          in
          catch_unix (fun () -> Ok (Unix.lseek fd offset w)));
      f_tell = (fun () -> Unix.lseek fd 0 Unix.SEEK_CUR);
      f_size = (fun () -> (Unix.fstat fd).Unix.st_size);
      f_set_size = (fun n -> catch_unix (fun () -> Unix.ftruncate fd n; Ok ()));
      f_sync = (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ());
      f_close =
        (fun () ->
          if not !closed then begin
            closed := true;
            try Unix.close fd with Unix.Unix_error _ -> ()
          end);
    }
  in
  {
    d_open =
      (fun path ~create ~trunc ~excl ~append ->
        match resolve path with
        | Error e -> Error e
        | Ok p ->
            catch_unix (fun () ->
                let flags =
                  [ Unix.O_RDWR ]
                  @ (if create then [ Unix.O_CREAT ] else [])
                  @ (if trunc then [ Unix.O_TRUNC ] else [])
                  @ (if excl then [ Unix.O_EXCL ] else [])
                  @ if append then [ Unix.O_APPEND ] else []
                in
                Ok (os_file (Unix.openfile p flags 0o644))));
    d_unlink =
      (fun path ->
        match resolve path with
        | Error e -> Error e
        | Ok p -> catch_unix (fun () -> Unix.unlink p; Ok ()));
    d_create_dir =
      (fun path ->
        match resolve path with
        | Error e -> Error e
        | Ok p -> catch_unix (fun () -> Unix.mkdir p 0o755; Ok ()));
    d_remove_dir =
      (fun path ->
        match resolve path with
        | Error e -> Error e
        | Ok p -> catch_unix (fun () -> Unix.rmdir p; Ok ()));
    d_rename =
      (fun from to_ ->
        match (resolve from, resolve to_) with
        | Error e, _ | _, Error e -> Error e
        | Ok f, Ok t -> catch_unix (fun () -> Unix.rename f t; Ok ()));
    d_stat =
      (fun path ->
        match resolve path with
        | Error e -> Error e
        | Ok p ->
            catch_unix (fun () ->
                let st = Unix.stat p in
                let ft =
                  match st.Unix.st_kind with
                  | Unix.S_REG -> Regular
                  | Unix.S_DIR -> Directory
                  | Unix.S_CHR -> Char_device
                  | _ -> Unknown
                in
                Ok { st_size = st.Unix.st_size; st_filetype = ft }));
    d_list =
      (fun path ->
        let dirp = if path = "" || path = "." then root else Filename.concat root path in
        catch_unix (fun () ->
            let entries = Sys.readdir dirp in
            Ok
              (Array.to_list entries
              |> List.map (fun name ->
                     let full = Filename.concat dirp name in
                     let ft = if Sys.is_directory full then Directory else Regular in
                     (name, ft))
              |> List.sort compare)));
  }
