(* WASI preview1 errno values (wire encoding). *)

let success = 0
let e2big = 1
let eacces = 2
let eagain = 6
let ebadf = 8
let ebusy = 10
let eexist = 20
let efault = 21
let efbig = 22
let einval = 28
let eio = 29
let eisdir = 31
let emfile = 33
let enoent = 44
let enomem = 48
let enospc = 51
let enosys = 52
let enotdir = 54
let enotempty = 55
let enotsup = 58
let eperm = 63
let epipe = 64
let erange = 68
let espipe = 70
let enotcapable = 76

let to_string = function
  | 0 -> "ESUCCESS"
  | 2 -> "EACCES"
  | 8 -> "EBADF"
  | 20 -> "EEXIST"
  | 28 -> "EINVAL"
  | 29 -> "EIO"
  | 44 -> "ENOENT"
  | 52 -> "ENOSYS"
  | 58 -> "ENOTSUP"
  | 76 -> "ENOTCAPABLE"
  | n -> Printf.sprintf "errno(%d)" n
