lib/wasi/api.ml: Bytes Char Errno Hashtbl Instance Int32 Int64 Interp List Memory Random String Twine_wasm Types Unix Vfs
