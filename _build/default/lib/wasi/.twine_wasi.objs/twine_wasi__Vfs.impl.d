lib/wasi/vfs.ml: Array Buffer Bytes Errno Filename Hashtbl List String Sys Unix
