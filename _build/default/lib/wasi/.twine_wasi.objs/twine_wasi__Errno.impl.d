lib/wasi/errno.ml: Printf
