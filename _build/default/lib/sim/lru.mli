(** Generic LRU cache with O(1) find/put/remove.

    Shared by the EPC resident-page set, the protected-file-system node
    cache, and the database page cache — the three caches whose interplay
    produces the paper's performance cliffs. *)

type ('k, 'v) t

val create : capacity:int -> unit -> ('k, 'v) t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Promotes the entry to most-recently-used on hit. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Like {!find} but without promotion. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership test without promotion. *)

val put : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option
(** Insert or update (promoting). Returns the evicted LRU entry if the
    cache was full and a different key had to make room. *)

val remove : ('k, 'v) t -> 'k -> 'v option

val set_capacity : ('k, 'v) t -> int -> ('k * 'v) list
(** Shrink or grow; returns entries evicted by a shrink (LRU first). *)

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Most-recently-used first. *)

val clear : ('k, 'v) t -> unit
val iter : (('k -> 'v -> unit) -> ('k, 'v) t -> unit)
