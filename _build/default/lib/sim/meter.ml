type cell = { mutable ns : int; mutable count : int }
type t = (string, cell) Hashtbl.t

let create () : t = Hashtbl.create 16

let cell t name =
  match Hashtbl.find_opt t name with
  | Some c -> c
  | None ->
      let c = { ns = 0; count = 0 } in
      Hashtbl.add t name c;
      c

let charge t name ns =
  let c = cell t name in
  c.ns <- c.ns + ns;
  c.count <- c.count + 1

let bump t name =
  let c = cell t name in
  c.count <- c.count + 1

let ns t name = match Hashtbl.find_opt t name with Some c -> c.ns | None -> 0
let count t name = match Hashtbl.find_opt t name with Some c -> c.count | None -> 0
let reset = Hashtbl.reset

let snapshot t =
  Hashtbl.fold (fun k c acc -> (k, (c.ns, c.count)) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let total_ns t = Hashtbl.fold (fun _ c acc -> acc + c.ns) t 0
