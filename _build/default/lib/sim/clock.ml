type t = { mutable now : int }

let create () = { now = 0 }
let now_ns t = t.now

let advance t ns =
  if ns < 0 then invalid_arg "Clock.advance: negative";
  t.now <- t.now + ns

let elapsed_since t t0 = t.now - t0
