lib/sim/clock.mli:
