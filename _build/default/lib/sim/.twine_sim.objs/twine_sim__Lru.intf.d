lib/sim/lru.mli:
