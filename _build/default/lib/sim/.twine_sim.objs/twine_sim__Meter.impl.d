lib/sim/meter.ml: Hashtbl List String
