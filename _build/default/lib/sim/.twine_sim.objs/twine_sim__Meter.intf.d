lib/sim/meter.mli:
