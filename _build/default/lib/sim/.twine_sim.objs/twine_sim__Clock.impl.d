lib/sim/clock.ml:
