(* Doubly-linked list threaded through a hash table. [head] is the MRU end,
   [tail] the LRU end. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (* towards MRU *)
  mutable next : ('k, 'v) node option;  (* towards LRU *)
}

type ('k, 'v) t = {
  mutable capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
}

let create ~capacity () =
  if capacity < 1 then invalid_arg "Lru.create: capacity < 1";
  { capacity; table = Hashtbl.create 64; head = None; tail = None }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let promote t n =
  if t.head != Some n then begin
    unlink t n;
    push_front t n
  end

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some n ->
      promote t n;
      Some n.value

let peek t k =
  match Hashtbl.find_opt t.table k with None -> None | Some n -> Some n.value

let mem t k = Hashtbl.mem t.table k

let evict_lru t =
  match t.tail with
  | None -> None
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.key;
      Some (n.key, n.value)

let put t k v =
  match Hashtbl.find_opt t.table k with
  | Some n ->
      n.value <- v;
      promote t n;
      None
  | None ->
      let evicted = if length t >= t.capacity then evict_lru t else None in
      let n = { key = k; value = v; prev = None; next = None } in
      Hashtbl.add t.table k n;
      push_front t n;
      evicted

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table k;
      Some n.value

let set_capacity t cap =
  if cap < 1 then invalid_arg "Lru.set_capacity: capacity < 1";
  t.capacity <- cap;
  let rec shrink acc =
    if length t > t.capacity then
      match evict_lru t with Some e -> shrink (e :: acc) | None -> acc
    else acc
  in
  List.rev (shrink [])

let to_list t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go ((n.key, n.value) :: acc) n.next
  in
  go [] t.head

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let iter f t = List.iter (fun (k, v) -> f k v) (to_list t)
