(** Named accumulators for the time-breakdown analyses (paper §V-F).

    Each component charge records both total nanoseconds and an event
    count, keyed by a component label such as ["ocall"], ["memset"],
    ["ipfs.read"] or ["sqlite"]. *)

type t

val create : unit -> t

val charge : t -> string -> int -> unit
(** [charge m component ns] adds [ns] to [component] and bumps its count. *)

val bump : t -> string -> unit
(** Count-only event (zero time). *)

val ns : t -> string -> int
val count : t -> string -> int

val reset : t -> unit

val snapshot : t -> (string * (int * int)) list
(** [(component, (total_ns, count))] sorted by component name. *)

val total_ns : t -> int
(** Sum over all components. *)
