(** Deterministic virtual clock.

    All simulated costs (SGX transitions, EPC paging, encryption work,
    cross-boundary copies) advance this clock, so experiment output is a
    pure function of the workload and the cost model — reproducible across
    machines, unlike wall-clock measurements of the simulator itself. *)

type t

val create : unit -> t

val now_ns : t -> int
(** Current virtual time in nanoseconds since [create]. *)

val advance : t -> int -> unit
(** Advance by a non-negative number of nanoseconds. *)

val elapsed_since : t -> int -> int
(** [elapsed_since t t0] = [now_ns t - t0]. *)
