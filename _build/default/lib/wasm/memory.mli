(** WebAssembly linear memory: a vector of 64 KiB pages with little-endian
    loads/stores and bounds checking that traps on out-of-range access. *)

type t

val create : Types.limits -> t
val size_pages : t -> int
val size_bytes : t -> int

val grow : t -> int -> int32
(** [grow t delta] returns the old size in pages, or [-1l] if growth would
    exceed the limit (as the [memory.grow] instruction does). *)

val load8_u : t -> int -> int32
val load8_s : t -> int -> int32
val load16_u : t -> int -> int32
val load16_s : t -> int -> int32
val load32 : t -> int -> int32
val load64 : t -> int -> int64
val store8 : t -> int -> int32 -> unit
val store16 : t -> int -> int32 -> unit
val store32 : t -> int -> int32 -> unit
val store64 : t -> int -> int64 -> unit

val load_bytes : t -> int -> int -> string
val store_bytes : t -> int -> string -> unit

val load_cstring : t -> int -> string
(** NUL-terminated string at the given address. *)

val on_access : t -> (addr:int -> len:int -> unit) option ref
(** Hook invoked before each access — the TWINE runtime uses it to charge
    EPC page touches for in-enclave Wasm memory. *)
