(** WebAssembly binary format (.wasm) encoder and decoder.

    [encode] produces a spec-conformant binary module; [decode] parses one
    back (MVP + sign-extension operators). Round-tripping an AST through
    encode/decode is the identity up to type-index normalisation. *)

exception Decode_error of string

val encode : Ast.module_ -> string
val decode : string -> Ast.module_
(** @raise Decode_error on malformed input. *)
