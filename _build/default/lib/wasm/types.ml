type valtype = I32 | I64 | F32 | F64

type functype = { params : valtype list; results : valtype list }

type limits = { min : int; max : int option }

type mut = Const | Var

type globaltype = { gt_mut : mut; gt_val : valtype }

let string_of_valtype = function
  | I32 -> "i32"
  | I64 -> "i64"
  | F32 -> "f32"
  | F64 -> "f64"

let string_of_functype { params; results } =
  let tys l = String.concat " " (List.map string_of_valtype l) in
  Printf.sprintf "[%s] -> [%s]" (tys params) (tys results)

let page_size = 65536
