lib/wasm/memory.ml: Bytes Char Int32 Option String Types Values
