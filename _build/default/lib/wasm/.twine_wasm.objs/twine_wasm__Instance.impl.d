lib/wasm/instance.ml: Array Ast Hashtbl Int32 List Memory Printf String Types Values
