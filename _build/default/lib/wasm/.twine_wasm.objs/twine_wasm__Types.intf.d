lib/wasm/types.mli:
