lib/wasm/wat.ml: Ast Buffer Builder Char Float Int32 Int64 List Printf String Types Values
