lib/wasm/builder.mli: Ast Types
