lib/wasm/aot.ml: Array Ast Instance Int32 Int64 Interp List Memory Types Values
