lib/wasm/binary.mli: Ast
