lib/wasm/interp.ml: Array Ast Instance Int32 Int64 List Memory Types Values
