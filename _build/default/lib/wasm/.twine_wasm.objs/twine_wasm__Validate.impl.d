lib/wasm/validate.ml: Array Ast Hashtbl List Printf Types
