lib/wasm/values.ml: Ast Float Int32 Int64 Printf Types
