lib/wasm/memory.mli: Types
