open Types
open Ast

exception Invalid of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

(* Operand stack entries: None is the unknown type (after unreachable). *)
type opd = valtype option

type ctrl = {
  label_types : valtype list;  (* what a branch to this label carries *)
  end_types : valtype list;  (* what falls out at the end *)
  height : int;
  mutable unreachable : bool;
}

type ctx = {
  module_ : module_;
  mutable opds : opd list;
  mutable ctrls : ctrl list;
  locals : valtype array;
  n_funcs : int;
  n_globals : int;
  global_types : globaltype array;
  has_memory : bool;
  has_table : bool;
}

let push_opd ctx t = ctx.opds <- t :: ctx.opds

let pop_opd ctx =
  match ctx.ctrls with
  | [] -> fail "control stack empty"
  | frame :: _ ->
      if List.length ctx.opds = frame.height then
        if frame.unreachable then None else fail "type stack underflow"
      else begin
        match ctx.opds with
        | t :: rest ->
            ctx.opds <- rest;
            t
        | [] -> fail "type stack underflow"
      end

let pop_expect ctx expected =
  match pop_opd ctx with
  | None -> ()
  | Some t when t = expected -> ()
  | Some t ->
      fail "type mismatch: expected %s, got %s" (string_of_valtype expected)
        (string_of_valtype t)

let push_ctrl ctx ~label_types ~end_types =
  ctx.ctrls <-
    { label_types; end_types; height = List.length ctx.opds; unreachable = false }
    :: ctx.ctrls

let pop_ctrl ctx =
  match ctx.ctrls with
  | [] -> fail "control stack empty"
  | frame :: rest ->
      List.iter (fun t -> pop_expect ctx t) (List.rev frame.end_types);
      if List.length ctx.opds <> frame.height then fail "values left on stack at end of block";
      ctx.ctrls <- rest;
      frame

let set_unreachable ctx =
  match ctx.ctrls with
  | [] -> fail "control stack empty"
  | frame :: _ ->
      (* drop operands down to the frame height *)
      let rec drop l n = if n <= 0 then l else match l with _ :: r -> drop r (n - 1) | [] -> [] in
      ctx.opds <- drop ctx.opds (List.length ctx.opds - frame.height);
      frame.unreachable <- true

let label_types_at ctx k =
  match List.nth_opt ctx.ctrls k with
  | Some f -> f.label_types
  | None -> fail "branch depth %d out of range" k

let func_type_of ctx fidx =
  if fidx < 0 || fidx >= ctx.n_funcs then fail "function index %d out of range" fidx;
  ctx.module_.types.(func_type_idx ctx.module_ fidx)

let check_memarg ctx (m : memarg) max_align =
  if not ctx.has_memory then fail "memory instruction without memory";
  if m.align > max_align then fail "alignment must not exceed natural alignment"

let bt_types = function None -> [] | Some t -> [ t ]

let rec check_instr ctx (i : instr) =
  match i with
  | Unreachable -> set_unreachable ctx
  | Nop -> ()
  | Block (bt, body) ->
      push_ctrl ctx ~label_types:(bt_types bt) ~end_types:(bt_types bt);
      check_body ctx body;
      let f = pop_ctrl ctx in
      List.iter (fun t -> push_opd ctx (Some t)) f.end_types
  | Loop (bt, body) ->
      (* a loop's label receives no values (MVP: no block params) *)
      push_ctrl ctx ~label_types:[] ~end_types:(bt_types bt);
      check_body ctx body;
      let f = pop_ctrl ctx in
      List.iter (fun t -> push_opd ctx (Some t)) f.end_types
  | If (bt, then_, else_) ->
      pop_expect ctx I32;
      push_ctrl ctx ~label_types:(bt_types bt) ~end_types:(bt_types bt);
      check_body ctx then_;
      let f = pop_ctrl ctx in
      (* validate else with the same frame *)
      push_ctrl ctx ~label_types:f.label_types ~end_types:f.end_types;
      check_body ctx else_;
      let f = pop_ctrl ctx in
      List.iter (fun t -> push_opd ctx (Some t)) f.end_types
  | Br k ->
      let lts = label_types_at ctx k in
      List.iter (fun t -> pop_expect ctx t) (List.rev lts);
      set_unreachable ctx
  | Br_if k ->
      pop_expect ctx I32;
      let lts = label_types_at ctx k in
      List.iter (fun t -> pop_expect ctx t) (List.rev lts);
      List.iter (fun t -> push_opd ctx (Some t)) lts
  | Br_table (ks, d) ->
      pop_expect ctx I32;
      let dts = label_types_at ctx d in
      List.iter
        (fun k ->
          if label_types_at ctx k <> dts then fail "br_table: label arity mismatch")
        ks;
      List.iter (fun t -> pop_expect ctx t) (List.rev dts);
      set_unreachable ctx
  | Return ->
      (* the outermost frame's end_types are the function results *)
      let rec last = function [ f ] -> f | _ :: r -> last r | [] -> fail "no frame" in
      let f = last ctx.ctrls in
      List.iter (fun t -> pop_expect ctx t) (List.rev f.end_types);
      set_unreachable ctx
  | Call fidx ->
      let ft = func_type_of ctx fidx in
      List.iter (fun t -> pop_expect ctx t) (List.rev ft.params);
      List.iter (fun t -> push_opd ctx (Some t)) ft.results
  | Call_indirect ti ->
      if not ctx.has_table then fail "call_indirect without table";
      if ti < 0 || ti >= Array.length ctx.module_.types then fail "type index out of range";
      pop_expect ctx I32;
      let ft = ctx.module_.types.(ti) in
      List.iter (fun t -> pop_expect ctx t) (List.rev ft.params);
      List.iter (fun t -> push_opd ctx (Some t)) ft.results
  | Drop -> ignore (pop_opd ctx)
  | Select ->
      pop_expect ctx I32;
      let t1 = pop_opd ctx in
      let t2 = pop_opd ctx in
      (match (t1, t2) with
      | Some a, Some b when a <> b -> fail "select operands differ"
      | _ -> ());
      push_opd ctx (match t1 with Some _ -> t1 | None -> t2)
  | Local_get n -> push_opd ctx (Some (local_type ctx n))
  | Local_set n -> pop_expect ctx (local_type ctx n)
  | Local_tee n ->
      let t = local_type ctx n in
      pop_expect ctx t;
      push_opd ctx (Some t)
  | Global_get n -> push_opd ctx (Some (global_type ctx n).gt_val)
  | Global_set n ->
      let gt = global_type ctx n in
      if gt.gt_mut = Const then fail "global.set of immutable global";
      pop_expect ctx gt.gt_val
  | I32_load m -> check_memarg ctx m 2; pop_expect ctx I32; push_opd ctx (Some I32)
  | I64_load m -> check_memarg ctx m 3; pop_expect ctx I32; push_opd ctx (Some I64)
  | F32_load m -> check_memarg ctx m 2; pop_expect ctx I32; push_opd ctx (Some F32)
  | F64_load m -> check_memarg ctx m 3; pop_expect ctx I32; push_opd ctx (Some F64)
  | I32_load8_s m | I32_load8_u m ->
      check_memarg ctx m 0; pop_expect ctx I32; push_opd ctx (Some I32)
  | I32_load16_s m | I32_load16_u m ->
      check_memarg ctx m 1; pop_expect ctx I32; push_opd ctx (Some I32)
  | I64_load8_s m | I64_load8_u m ->
      check_memarg ctx m 0; pop_expect ctx I32; push_opd ctx (Some I64)
  | I64_load16_s m | I64_load16_u m ->
      check_memarg ctx m 1; pop_expect ctx I32; push_opd ctx (Some I64)
  | I64_load32_s m | I64_load32_u m ->
      check_memarg ctx m 2; pop_expect ctx I32; push_opd ctx (Some I64)
  | I32_store m -> check_memarg ctx m 2; pop_expect ctx I32; pop_expect ctx I32
  | I64_store m -> check_memarg ctx m 3; pop_expect ctx I64; pop_expect ctx I32
  | F32_store m -> check_memarg ctx m 2; pop_expect ctx F32; pop_expect ctx I32
  | F64_store m -> check_memarg ctx m 3; pop_expect ctx F64; pop_expect ctx I32
  | I32_store8 m -> check_memarg ctx m 0; pop_expect ctx I32; pop_expect ctx I32
  | I32_store16 m -> check_memarg ctx m 1; pop_expect ctx I32; pop_expect ctx I32
  | I64_store8 m -> check_memarg ctx m 0; pop_expect ctx I64; pop_expect ctx I32
  | I64_store16 m -> check_memarg ctx m 1; pop_expect ctx I64; pop_expect ctx I32
  | I64_store32 m -> check_memarg ctx m 2; pop_expect ctx I64; pop_expect ctx I32
  | Memory_size ->
      if not ctx.has_memory then fail "memory.size without memory";
      push_opd ctx (Some I32)
  | Memory_grow ->
      if not ctx.has_memory then fail "memory.grow without memory";
      pop_expect ctx I32;
      push_opd ctx (Some I32)
  | I32_const _ -> push_opd ctx (Some I32)
  | I64_const _ -> push_opd ctx (Some I64)
  | F32_const _ -> push_opd ctx (Some F32)
  | F64_const _ -> push_opd ctx (Some F64)
  | I32_unop _ -> pop_expect ctx I32; push_opd ctx (Some I32)
  | I64_unop _ -> pop_expect ctx I64; push_opd ctx (Some I64)
  | I32_binop _ -> pop_expect ctx I32; pop_expect ctx I32; push_opd ctx (Some I32)
  | I64_binop _ -> pop_expect ctx I64; pop_expect ctx I64; push_opd ctx (Some I64)
  | I32_eqz -> pop_expect ctx I32; push_opd ctx (Some I32)
  | I64_eqz -> pop_expect ctx I64; push_opd ctx (Some I32)
  | I32_relop _ -> pop_expect ctx I32; pop_expect ctx I32; push_opd ctx (Some I32)
  | I64_relop _ -> pop_expect ctx I64; pop_expect ctx I64; push_opd ctx (Some I32)
  | F32_unop _ -> pop_expect ctx F32; push_opd ctx (Some F32)
  | F64_unop _ -> pop_expect ctx F64; push_opd ctx (Some F64)
  | F32_binop _ -> pop_expect ctx F32; pop_expect ctx F32; push_opd ctx (Some F32)
  | F64_binop _ -> pop_expect ctx F64; pop_expect ctx F64; push_opd ctx (Some F64)
  | F32_relop _ -> pop_expect ctx F32; pop_expect ctx F32; push_opd ctx (Some I32)
  | F64_relop _ -> pop_expect ctx F64; pop_expect ctx F64; push_opd ctx (Some I32)
  | Cvt op ->
      let src, dst = cvt_types op in
      pop_expect ctx src;
      push_opd ctx (Some dst)

and check_body ctx body = List.iter (check_instr ctx) body

and local_type ctx n =
  if n < 0 || n >= Array.length ctx.locals then fail "local index %d out of range" n;
  ctx.locals.(n)

and global_type ctx n =
  if n < 0 || n >= ctx.n_globals then fail "global index %d out of range" n;
  ctx.global_types.(n)

and cvt_types = function
  | I32_wrap_i64 -> (I64, I32)
  | I64_extend_i32_s | I64_extend_i32_u -> (I32, I64)
  | I32_trunc_f32_s | I32_trunc_f32_u -> (F32, I32)
  | I32_trunc_f64_s | I32_trunc_f64_u -> (F64, I32)
  | I64_trunc_f32_s | I64_trunc_f32_u -> (F32, I64)
  | I64_trunc_f64_s | I64_trunc_f64_u -> (F64, I64)
  | F32_convert_i32_s | F32_convert_i32_u -> (I32, F32)
  | F32_convert_i64_s | F32_convert_i64_u -> (I64, F32)
  | F64_convert_i32_s | F64_convert_i32_u -> (I32, F64)
  | F64_convert_i64_s | F64_convert_i64_u -> (I64, F64)
  | F32_demote_f64 -> (F64, F32)
  | F64_promote_f32 -> (F32, F64)
  | I32_reinterpret_f32 -> (F32, I32)
  | I64_reinterpret_f64 -> (F64, I64)
  | F32_reinterpret_i32 -> (I32, F32)
  | F64_reinterpret_i64 -> (I64, F64)
  | I32_extend8_s | I32_extend16_s -> (I32, I32)
  | I64_extend8_s | I64_extend16_s | I64_extend32_s -> (I64, I64)

let check_const_expr m n_imported_globals expr expected =
  (match expr with
  | [ I32_const _ ] -> if expected <> I32 then fail "const type mismatch"
  | [ I64_const _ ] -> if expected <> I64 then fail "const type mismatch"
  | [ F32_const _ ] -> if expected <> F32 then fail "const type mismatch"
  | [ F64_const _ ] -> if expected <> F64 then fail "const type mismatch"
  | [ Global_get i ] ->
      if i >= n_imported_globals then fail "const global.get must reference an import"
  | _ -> fail "unsupported constant expression");
  ignore m

let global_types_of m =
  let imported =
    List.filter_map
      (fun i -> match i.imp_desc with Import_global gt -> Some gt | _ -> None)
      m.imports
  in
  Array.of_list (imported @ Array.to_list (Array.map (fun g -> g.g_type) m.globals))

let check_module (m : module_) =
  let n_imported_funcs = imported_funcs m in
  let n_funcs = n_imported_funcs + Array.length m.funcs in
  let n_imported_globals = imported_globals m in
  let global_types = global_types_of m in
  let has_memory =
    m.memories <> None
    || List.exists
         (fun i -> match i.imp_desc with Import_memory _ -> true | _ -> false)
         m.imports
  in
  let has_table =
    m.tables <> None
    || List.exists
         (fun i -> match i.imp_desc with Import_table _ -> true | _ -> false)
         m.imports
  in
  (* imports reference valid types *)
  List.iter
    (fun im ->
      match im.imp_desc with
      | Import_func ti ->
          if ti < 0 || ti >= Array.length m.types then fail "import type index out of range"
      | _ -> ())
    m.imports;
  (* globals *)
  Array.iter
    (fun g -> check_const_expr m n_imported_globals g.g_init g.g_type.gt_val)
    m.globals;
  (* exports reference valid indices, names unique *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun e ->
      if Hashtbl.mem seen e.exp_name then fail "duplicate export %S" e.exp_name;
      Hashtbl.add seen e.exp_name ();
      match e.exp_desc with
      | Export_func i -> if i < 0 || i >= n_funcs then fail "export func index"
      | Export_global i ->
          if i < 0 || i >= Array.length global_types then fail "export global index"
      | Export_memory i -> if i <> 0 || not has_memory then fail "export memory index"
      | Export_table i -> if i <> 0 || not has_table then fail "export table index")
    m.exports;
  (* start function: [] -> [] *)
  (match m.start with
  | Some fidx ->
      if fidx < 0 || fidx >= n_funcs then fail "start index out of range";
      let ft = m.types.(func_type_idx m fidx) in
      if ft.params <> [] || ft.results <> [] then fail "start function must be [] -> []"
  | None -> ());
  (* element segments *)
  List.iter
    (fun e ->
      if not has_table then fail "elem without table";
      check_const_expr m n_imported_globals e.e_offset I32;
      List.iter (fun fidx -> if fidx < 0 || fidx >= n_funcs then fail "elem func index") e.e_init)
    m.elems;
  (* data segments *)
  List.iter
    (fun d ->
      if not has_memory then fail "data without memory";
      check_const_expr m n_imported_globals d.d_offset I32)
    m.datas;
  (* function bodies *)
  Array.iteri
    (fun i f ->
      if f.ftype < 0 || f.ftype >= Array.length m.types then
        fail "func %d: type index out of range" i;
      let ft = m.types.(f.ftype) in
      if List.length ft.results > 1 then fail "multi-value results unsupported";
      let ctx =
        {
          module_ = m;
          opds = [];
          ctrls = [];
          locals = Array.of_list (ft.params @ f.locals);
          n_funcs;
          n_globals = Array.length global_types;
          global_types;
          has_memory;
          has_table;
        }
      in
      push_ctrl ctx ~label_types:ft.results ~end_types:ft.results;
      (try check_body ctx f.body
       with Invalid msg -> fail "func %d: %s" i msg);
      (try ignore (pop_ctrl ctx)
       with Invalid msg -> fail "func %d (at end): %s" i msg))
    m.funcs

let is_valid m =
  try
    check_module m;
    true
  with Invalid _ -> false
