(** WebAssembly text format (WAT) parser.

    Supports the common subset used by hand-written modules: folded and
    flat instructions, named or indexed locals/functions/globals, imports,
    exports, memory/data, table/elem, start, and block/loop/if with
    optional result types.

    Example:
    {[
      let m = Wat.parse {|
        (module
          (func $add (export "add") (param $a i32) (param $b i32) (result i32)
            (i32.add (local.get $a) (local.get $b))))
      |}
    ]} *)

exception Parse_error of string

val parse : string -> Ast.module_
(** @raise Parse_error on malformed input. *)
