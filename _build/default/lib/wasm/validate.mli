(** Module validation (type checking), following the algorithm in the
    appendix of the WebAssembly core specification: an operand stack of
    possibly-unknown value types plus a stack of control frames, with
    stack-polymorphic typing after unconditional branches. *)

exception Invalid of string

val check_module : Ast.module_ -> unit
(** @raise Invalid describing the first violation found. *)

val is_valid : Ast.module_ -> bool
