(* Runtime values and the numeric semantics of WebAssembly operators.
   f32 values are represented as OCaml floats that are always the exact
   image of a 32-bit float (re-rounded through Int32 bits after every
   operation). *)

type value = I32 of int32 | I64 of int64 | F32 of float | F64 of float

exception Trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

let type_of = function I32 _ -> Types.I32 | I64 _ -> Types.I64 | F32 _ -> Types.F32 | F64 _ -> Types.F64

let default_value = function
  | Types.I32 -> I32 0l
  | Types.I64 -> I64 0L
  | Types.F32 -> F32 0.
  | Types.F64 -> F64 0.

let to_string = function
  | I32 v -> Printf.sprintf "i32:%ld" v
  | I64 v -> Printf.sprintf "i64:%Ld" v
  | F32 v -> Printf.sprintf "f32:%h" v
  | F64 v -> Printf.sprintf "f64:%h" v

let f32_round f = Int32.float_of_bits (Int32.bits_of_float f)

(* --- i32 helpers --- *)

let i32_of_bool b = if b then 1l else 0l

let u32_compare a b =
  (* unsigned comparison via flipping the sign bit *)
  Int32.compare (Int32.logxor a Int32.min_int) (Int32.logxor b Int32.min_int)

let u64_compare a b =
  Int64.compare (Int64.logxor a Int64.min_int) (Int64.logxor b Int64.min_int)

let i32_divs a b =
  if b = 0l then trap "integer divide by zero"
  else if a = Int32.min_int && b = -1l then trap "integer overflow"
  else Int32.div a b

let i32_divu a b =
  if b = 0l then trap "integer divide by zero" else Int32.unsigned_div a b

let i32_rems a b = if b = 0l then trap "integer divide by zero" else Int32.rem a b
let i32_remu a b = if b = 0l then trap "integer divide by zero" else Int32.unsigned_rem a b

let i32_shl a b = Int32.shift_left a (Int32.to_int (Int32.logand b 31l))
let i32_shrs a b = Int32.shift_right a (Int32.to_int (Int32.logand b 31l))
let i32_shru a b = Int32.shift_right_logical a (Int32.to_int (Int32.logand b 31l))

let i32_rotl a b =
  let n = Int32.to_int (Int32.logand b 31l) in
  if n = 0 then a
  else Int32.logor (Int32.shift_left a n) (Int32.shift_right_logical a (32 - n))

let i32_rotr a b =
  let n = Int32.to_int (Int32.logand b 31l) in
  if n = 0 then a
  else Int32.logor (Int32.shift_right_logical a n) (Int32.shift_left a (32 - n))

let i32_clz a =
  if a = 0l then 32l
  else begin
    let rec go n mask =
      if Int32.logand a mask <> 0l then n else go (n + 1) (Int32.shift_right_logical mask 1)
    in
    Int32.of_int (go 0 Int32.min_int)
  end

let i32_ctz a =
  if a = 0l then 32l
  else begin
    let rec go n mask =
      if Int32.logand a mask <> 0l then n else go (n + 1) (Int32.shift_left mask 1)
    in
    Int32.of_int (go 0 1l)
  end

let i32_popcnt a =
  let c = ref 0 in
  for i = 0 to 31 do
    if Int32.logand (Int32.shift_right_logical a i) 1l = 1l then incr c
  done;
  Int32.of_int !c

(* --- i64 helpers --- *)

let i64_divs a b =
  if b = 0L then trap "integer divide by zero"
  else if a = Int64.min_int && b = -1L then trap "integer overflow"
  else Int64.div a b

let i64_divu a b = if b = 0L then trap "integer divide by zero" else Int64.unsigned_div a b
let i64_rems a b = if b = 0L then trap "integer divide by zero" else Int64.rem a b
let i64_remu a b = if b = 0L then trap "integer divide by zero" else Int64.unsigned_rem a b

let i64_shl a b = Int64.shift_left a (Int64.to_int (Int64.logand b 63L))
let i64_shrs a b = Int64.shift_right a (Int64.to_int (Int64.logand b 63L))
let i64_shru a b = Int64.shift_right_logical a (Int64.to_int (Int64.logand b 63L))

let i64_rotl a b =
  let n = Int64.to_int (Int64.logand b 63L) in
  if n = 0 then a
  else Int64.logor (Int64.shift_left a n) (Int64.shift_right_logical a (64 - n))

let i64_rotr a b =
  let n = Int64.to_int (Int64.logand b 63L) in
  if n = 0 then a
  else Int64.logor (Int64.shift_right_logical a n) (Int64.shift_left a (64 - n))

let i64_clz a =
  if a = 0L then 64L
  else begin
    let rec go n mask =
      if Int64.logand a mask <> 0L then n else go (n + 1) (Int64.shift_right_logical mask 1)
    in
    Int64.of_int (go 0 Int64.min_int)
  end

let i64_ctz a =
  if a = 0L then 64L
  else begin
    let rec go n mask =
      if Int64.logand a mask <> 0L then n else go (n + 1) (Int64.shift_left mask 1)
    in
    Int64.of_int (go 0 1L)
  end

let i64_popcnt a =
  let c = ref 0 in
  for i = 0 to 63 do
    if Int64.logand (Int64.shift_right_logical a i) 1L = 1L then incr c
  done;
  Int64.of_int !c

(* --- float helpers --- *)

let f_nearest x =
  (* round-half-to-even *)
  if Float.is_nan x || Float.is_integer x then x
  else begin
    let lo = Float.floor x and hi = Float.ceil x in
    let result =
      let dl = x -. lo and dh = hi -. x in
      if dl < dh then lo
      else if dh < dl then hi
      else if Float.rem lo 2. = 0. then lo
      else hi
    in
    if result = 0. && x < 0. then -0. else result
  end

let f_min a b =
  if Float.is_nan a || Float.is_nan b then Float.nan
  else if a = 0. && b = 0. then (if 1. /. a < 0. || 1. /. b < 0. then -0. else 0.)
  else Float.min a b

let f_max a b =
  if Float.is_nan a || Float.is_nan b then Float.nan
  else if a = 0. && b = 0. then (if 1. /. a > 0. || 1. /. b > 0. then 0. else -0.)
  else Float.max a b

(* --- trapping float-to-int conversions --- *)

let i32_trunc_f ~signed x =
  if Float.is_nan x then trap "invalid conversion to integer";
  let x = Float.trunc x in
  if signed then begin
    if x >= 2147483648.0 || x < -2147483648.0 then trap "integer overflow";
    Int32.of_float x
  end
  else begin
    if x >= 4294967296.0 || x <= -1.0 then trap "integer overflow";
    (* values >= 2^31 need wrapping into int32 *)
    Int64.to_int32 (Int64.of_float x)
  end

let i64_trunc_f ~signed x =
  if Float.is_nan x then trap "invalid conversion to integer";
  let x = Float.trunc x in
  if signed then begin
    if x >= 9.2233720368547758e18 || x < -9.2233720368547758e18 then trap "integer overflow";
    Int64.of_float x
  end
  else begin
    if x >= 1.8446744073709552e19 || x <= -1.0 then trap "integer overflow";
    if x < 9.2233720368547758e18 then Int64.of_float x
    else Int64.add (Int64.of_float (x -. 9.2233720368547758e18)) Int64.min_int
  end

let f_convert_i32_u v =
  let i = Int64.logand (Int64.of_int32 v) 0xffffffffL in
  Int64.to_float i

let f_convert_i64_u v =
  if Int64.compare v 0L >= 0 then Int64.to_float v
  else begin
    (* split to preserve precision like the spec's algorithm *)
    let shifted = Int64.shift_right_logical v 1 in
    let lsb = Int64.logand v 1L in
    (Int64.to_float shifted *. 2.0) +. Int64.to_float lsb
  end

(* --- sign extension ops --- *)

let i32_extend8_s v = Int32.shift_right (Int32.shift_left v 24) 24
let i32_extend16_s v = Int32.shift_right (Int32.shift_left v 16) 16
let i64_extend8_s v = Int64.shift_right (Int64.shift_left v 56) 56
let i64_extend16_s v = Int64.shift_right (Int64.shift_left v 48) 48
let i64_extend32_s v = Int64.shift_right (Int64.shift_left v 32) 32

(* --- applying the AST operator constructors --- *)

open Ast

let eval_i32_unop op v =
  match op with Clz -> i32_clz v | Ctz -> i32_ctz v | Popcnt -> i32_popcnt v

let eval_i64_unop op v =
  match op with Clz -> i64_clz v | Ctz -> i64_ctz v | Popcnt -> i64_popcnt v

let eval_i32_binop op a b =
  match op with
  | Add -> Int32.add a b
  | Sub -> Int32.sub a b
  | Mul -> Int32.mul a b
  | Div_s -> i32_divs a b
  | Div_u -> i32_divu a b
  | Rem_s -> i32_rems a b
  | Rem_u -> i32_remu a b
  | And -> Int32.logand a b
  | Or -> Int32.logor a b
  | Xor -> Int32.logxor a b
  | Shl -> i32_shl a b
  | Shr_s -> i32_shrs a b
  | Shr_u -> i32_shru a b
  | Rotl -> i32_rotl a b
  | Rotr -> i32_rotr a b

let eval_i64_binop op a b =
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Div_s -> i64_divs a b
  | Div_u -> i64_divu a b
  | Rem_s -> i64_rems a b
  | Rem_u -> i64_remu a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl -> i64_shl a b
  | Shr_s -> i64_shrs a b
  | Shr_u -> i64_shru a b
  | Rotl -> i64_rotl a b
  | Rotr -> i64_rotr a b

let eval_i32_relop op a b =
  i32_of_bool
    (match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt_s -> Int32.compare a b < 0
    | Lt_u -> u32_compare a b < 0
    | Gt_s -> Int32.compare a b > 0
    | Gt_u -> u32_compare a b > 0
    | Le_s -> Int32.compare a b <= 0
    | Le_u -> u32_compare a b <= 0
    | Ge_s -> Int32.compare a b >= 0
    | Ge_u -> u32_compare a b >= 0)

let eval_i64_relop op a b =
  i32_of_bool
    (match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt_s -> Int64.compare a b < 0
    | Lt_u -> u64_compare a b < 0
    | Gt_s -> Int64.compare a b > 0
    | Gt_u -> u64_compare a b > 0
    | Le_s -> Int64.compare a b <= 0
    | Le_u -> u64_compare a b <= 0
    | Ge_s -> Int64.compare a b >= 0
    | Ge_u -> u64_compare a b >= 0)

let eval_f_unop op v =
  match op with
  | Abs -> Float.abs v
  | Neg -> -.v
  | Sqrt -> Float.sqrt v
  | Ceil -> Float.ceil v
  | Floor -> Float.floor v
  | Trunc -> Float.trunc v
  | Nearest -> f_nearest v

let eval_f_binop op a b =
  match op with
  | Fadd -> a +. b
  | Fsub -> a -. b
  | Fmul -> a *. b
  | Fdiv -> a /. b
  | Fmin -> f_min a b
  | Fmax -> f_max a b
  | Copysign -> Float.copy_sign a b

let eval_f_relop op a b =
  i32_of_bool
    (match op with
    | Feq -> a = b
    | Fne -> a <> b
    | Flt -> a < b
    | Fgt -> a > b
    | Fle -> a <= b
    | Fge -> a >= b)

let eval_cvt op v =
  match (op, v) with
  | I32_wrap_i64, I64 x -> I32 (Int64.to_int32 x)
  | I64_extend_i32_s, I32 x -> I64 (Int64.of_int32 x)
  | I64_extend_i32_u, I32 x -> I64 (Int64.logand (Int64.of_int32 x) 0xffffffffL)
  | I32_trunc_f32_s, F32 x | I32_trunc_f64_s, F64 x -> I32 (i32_trunc_f ~signed:true x)
  | I32_trunc_f32_u, F32 x | I32_trunc_f64_u, F64 x -> I32 (i32_trunc_f ~signed:false x)
  | I64_trunc_f32_s, F32 x | I64_trunc_f64_s, F64 x -> I64 (i64_trunc_f ~signed:true x)
  | I64_trunc_f32_u, F32 x | I64_trunc_f64_u, F64 x -> I64 (i64_trunc_f ~signed:false x)
  | F32_convert_i32_s, I32 x -> F32 (f32_round (Int32.to_float x))
  | F32_convert_i32_u, I32 x -> F32 (f32_round (f_convert_i32_u x))
  | F32_convert_i64_s, I64 x -> F32 (f32_round (Int64.to_float x))
  | F32_convert_i64_u, I64 x -> F32 (f32_round (f_convert_i64_u x))
  | F64_convert_i32_s, I32 x -> F64 (Int32.to_float x)
  | F64_convert_i32_u, I32 x -> F64 (f_convert_i32_u x)
  | F64_convert_i64_s, I64 x -> F64 (Int64.to_float x)
  | F64_convert_i64_u, I64 x -> F64 (f_convert_i64_u x)
  | F32_demote_f64, F64 x -> F32 (f32_round x)
  | F64_promote_f32, F32 x -> F64 x
  | I32_reinterpret_f32, F32 x -> I32 (Int32.bits_of_float x)
  | I64_reinterpret_f64, F64 x -> I64 (Int64.bits_of_float x)
  | F32_reinterpret_i32, I32 x -> F32 (Int32.float_of_bits x)
  | F64_reinterpret_i64, I64 x -> F64 (Int64.float_of_bits x)
  | I32_extend8_s, I32 x -> I32 (i32_extend8_s x)
  | I32_extend16_s, I32 x -> I32 (i32_extend16_s x)
  | I64_extend8_s, I64 x -> I64 (i64_extend8_s x)
  | I64_extend16_s, I64 x -> I64 (i64_extend16_s x)
  | I64_extend32_s, I64 x -> I64 (i64_extend32_s x)
  | _ -> trap "conversion applied to value of wrong type"
