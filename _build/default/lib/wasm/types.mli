(** WebAssembly types (MVP core spec). *)

type valtype = I32 | I64 | F32 | F64

type functype = { params : valtype list; results : valtype list }

type limits = { min : int; max : int option }
(** In pages (64 KiB) for memories, entries for tables. *)

type mut = Const | Var

type globaltype = { gt_mut : mut; gt_val : valtype }

val string_of_valtype : valtype -> string
val string_of_functype : functype -> string
val page_size : int
(** 65536. *)
