lib/sgx/machine.ml: Clock Costs Epc Meter Twine_crypto Twine_sim
