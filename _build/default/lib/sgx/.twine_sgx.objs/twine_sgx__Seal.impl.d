lib/sgx/seal.ml: Enclave Gcm Hmac Machine String Twine_crypto
