lib/sgx/attestation.mli: Enclave Machine
