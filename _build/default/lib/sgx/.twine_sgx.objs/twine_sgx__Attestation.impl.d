lib/sgx/attestation.ml: Enclave Hmac List Machine Modes String Twine_crypto
