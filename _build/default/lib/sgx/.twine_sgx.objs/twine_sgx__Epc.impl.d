lib/sgx/epc.ml: Costs List Lru Twine_sim
