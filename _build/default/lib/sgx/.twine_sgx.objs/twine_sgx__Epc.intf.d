lib/sgx/epc.mli:
