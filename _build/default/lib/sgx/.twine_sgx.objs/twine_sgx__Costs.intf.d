lib/sgx/costs.mli:
