lib/sgx/enclave.mli: Machine Twine_crypto
