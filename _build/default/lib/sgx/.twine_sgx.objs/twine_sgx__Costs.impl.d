lib/sgx/costs.ml: Float
