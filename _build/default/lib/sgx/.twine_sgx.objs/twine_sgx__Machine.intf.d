lib/sgx/machine.mli: Costs Epc Twine_sim
