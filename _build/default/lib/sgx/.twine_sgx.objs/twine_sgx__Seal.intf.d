lib/sgx/seal.mli: Enclave
