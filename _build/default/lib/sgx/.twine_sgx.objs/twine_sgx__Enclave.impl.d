lib/sgx/enclave.ml: Costs Drbg Epc Fun Machine Sha256 String Twine_crypto
