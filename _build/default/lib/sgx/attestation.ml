open Twine_crypto

type report = {
  measurement : string;
  signer : string;
  report_data : string;
  mac : string;
}

let pad_data data =
  if String.length data > 64 then invalid_arg "Attestation: report data > 64 bytes";
  data ^ String.make (64 - String.length data) '\000'

let report_key (machine : Machine.t) =
  Hmac.derive ~key:machine.cpu_key ~info:"report-key" ~length:32

let provisioning_key (machine : Machine.t) =
  Hmac.derive ~key:machine.cpu_key ~info:"provisioning-key" ~length:32

let body_bytes ~measurement ~signer ~report_data =
  measurement ^ signer ^ report_data

let report enclave ~data =
  let report_data = pad_data data in
  let measurement = Enclave.measurement enclave
  and signer = Enclave.signer enclave in
  let machine = Enclave.machine enclave in
  let mac =
    Hmac.hmac_sha256 ~key:(report_key machine)
      (body_bytes ~measurement ~signer ~report_data)
  in
  { measurement; signer; report_data; mac }

let verify_report machine r =
  let expected =
    Hmac.hmac_sha256 ~key:(report_key machine)
      (body_bytes ~measurement:r.measurement ~signer:r.signer ~report_data:r.report_data)
  in
  Modes.ct_equal expected r.mac

type quote = { body : report; signature : string }

let quote enclave ~data =
  let body = report enclave ~data in
  (* The quoting enclave verifies the local report, then signs it with the
     provisioning key. *)
  let machine = Enclave.machine enclave in
  assert (verify_report machine body);
  let signature =
    Hmac.hmac_sha256 ~key:(provisioning_key machine)
      (body_bytes ~measurement:body.measurement ~signer:body.signer
         ~report_data:body.report_data)
  in
  { body; signature }

type service = { keys : string list }

let service_for machine = { keys = [ provisioning_key machine ] }

let verify_quote service ?expected_measurement q =
  let genuine =
    List.exists
      (fun key ->
        Modes.ct_equal q.signature
          (Hmac.hmac_sha256 ~key
             (body_bytes ~measurement:q.body.measurement ~signer:q.body.signer
                ~report_data:q.body.report_data)))
      service.keys
  in
  genuine
  && match expected_measurement with
     | None -> true
     | Some m -> Modes.ct_equal m q.body.measurement
