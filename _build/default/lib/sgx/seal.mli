(** SGX sealing: encrypt data so only the same enclave (MRENCLAVE policy)
    or any enclave from the same signer (MRSIGNER policy) on the same CPU
    can recover it. Keys derive from the fused CPU secret, so a sealed
    blob is unrecoverable on another machine — the IPFS key-derivation
    property §IV-E discusses. *)

type policy = Mr_enclave | Mr_signer

val key : Enclave.t -> ?policy:policy -> ?label:string -> unit -> string
(** 16-byte sealing key (EGETKEY analogue). *)

val seal : Enclave.t -> ?policy:policy -> ?label:string -> string -> string
(** Authenticated blob: policy byte || 12-byte IV || ciphertext || tag. *)

val unseal : Enclave.t -> ?label:string -> string -> string option
(** Recovers the plaintext if this enclave satisfies the blob's policy on
    this machine; [None] on any mismatch or tampering. *)
