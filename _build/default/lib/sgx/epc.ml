open Twine_sim

type page = int

type t = {
  resident : (page, unit) Lru.t;
  mutable fault_count : int;
}

let create ~limit_bytes =
  let pages = limit_bytes / Costs.page_size in
  if pages < 1 then invalid_arg "Epc.create: limit below one page";
  { resident = Lru.create ~capacity:pages (); fault_count = 0 }

let limit_pages t = Lru.capacity t.resident
let resident_pages t = Lru.length t.resident

let touch t page =
  match Lru.find t.resident page with
  | Some () -> `Hit
  | None ->
      t.fault_count <- t.fault_count + 1;
      ignore (Lru.put t.resident page ());
      `Fault

let page_of ~enclave_id ~page_no = (enclave_id lsl 40) lor page_no

let release_enclave t enclave_id =
  let belongs (page, ()) = page lsr 40 = enclave_id in
  let doomed = List.filter belongs (Lru.to_list t.resident) in
  List.iter (fun (page, ()) -> ignore (Lru.remove t.resident page)) doomed

let faults t = t.fault_count
