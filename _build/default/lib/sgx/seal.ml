open Twine_crypto

type policy = Mr_enclave | Mr_signer

let policy_byte = function Mr_enclave -> '\000' | Mr_signer -> '\001'

let identity enclave = function
  | Mr_enclave -> Enclave.measurement enclave
  | Mr_signer -> Enclave.signer enclave

let key enclave ?(policy = Mr_enclave) ?(label = "") () =
  let machine = Enclave.machine enclave in
  Hmac.derive ~key:machine.Machine.cpu_key
    ~info:("seal" ^ String.make 1 (policy_byte policy) ^ identity enclave policy ^ label)
    ~length:16

let seal enclave ?(policy = Mr_enclave) ?(label = "") plaintext =
  let k = Gcm.of_raw (key enclave ~policy ~label ()) in
  let iv = Enclave.random enclave 12 in
  let ct, tag = Gcm.encrypt k ~iv plaintext in
  String.make 1 (policy_byte policy) ^ iv ^ ct ^ tag

let unseal enclave ?(label = "") blob =
  let n = String.length blob in
  if n < 1 + 12 + 16 then None
  else begin
    let policy = if blob.[0] = '\000' then Mr_enclave else Mr_signer in
    let iv = String.sub blob 1 12 in
    let ct = String.sub blob 13 (n - 13 - 16) in
    let tag = String.sub blob (n - 16) 16 in
    let k = Gcm.of_raw (key enclave ~policy ~label ()) in
    Gcm.decrypt k ~iv ~tag ct
  end
