(** Local and remote attestation (paper §III-A).

    Local reports are MACed with a machine report key any enclave on the
    same CPU can re-derive. Remote quotes are produced by a simulated
    quoting enclave with a provisioning key known to the (simulated)
    attestation service, which vouches that a measurement runs on a
    genuine machine — the mechanism TWINE's trusted code deployment
    (Figure 1) relies on. *)

type report = {
  measurement : string;
  signer : string;
  report_data : string;  (** 64 bytes of user data, e.g. a channel key hash *)
  mac : string;
}

val report : Enclave.t -> data:string -> report
(** @raise Invalid_argument if [data] exceeds 64 bytes (it is padded). *)

val verify_report : Machine.t -> report -> bool

type quote = { body : report; signature : string }

val quote : Enclave.t -> data:string -> quote

type service
(** The attestation service endpoint (Intel IAS analogue). *)

val service_for : Machine.t -> service
(** Registration: the service learns the machine's provisioning secret. *)

val verify_quote :
  service -> ?expected_measurement:string -> quote -> bool
