(* A reimplementation of SQLite's Speedtest1 scenarios (§V-C, Fig 4):
   29 numbered tests matching the paper's experiment ids, each a
   self-contained SQL workload run against a Bench_db context. The [size]
   parameter scales every test's row counts (Speedtest1's --size). *)

type test = { id : int; label : string; run : Bench_db.t -> size:int -> unit }

let e ctx sql = ignore (Bench_db.exec ctx sql)
let q ctx sql = ignore (Bench_db.query ctx sql)

let batch ctx ~n f =
  e ctx "BEGIN";
  for i = 1 to n do
    f i
  done;
  e ctx "COMMIT"

(* number text of i, like speedtest1's swizzled text columns *)
let words = [| "zero"; "one"; "two"; "three"; "four"; "five"; "six"; "seven"; "eight"; "nine" |]

let spelled i =
  let rec go i acc =
    if i = 0 then acc else go (i / 10) (words.(i mod 10) ^ " " ^ acc)
  in
  if i = 0 then "zero" else String.trim (go i "")

let tests : test list =
  [
    { id = 100; label = "INSERTs into unindexed table";
      run = (fun ctx ~size ->
        e ctx "CREATE TABLE z1(a INTEGER, b INTEGER, c TEXT)";
        batch ctx ~n:size (fun i ->
            e ctx (Printf.sprintf "INSERT INTO z1 VALUES (%d, %d, '%s')" i (i * 2) (spelled i)))) };
    { id = 110; label = "INSERTs into table with INTEGER PRIMARY KEY";
      run = (fun ctx ~size ->
        e ctx "CREATE TABLE z2(a INTEGER PRIMARY KEY, b INTEGER, c TEXT)";
        batch ctx ~n:size (fun i ->
            e ctx (Printf.sprintf "INSERT INTO z2 VALUES (%d, %d, '%s')" i (i * 3) (spelled i)))) };
    { id = 120; label = "INSERTs into indexed table";
      run = (fun ctx ~size ->
        e ctx "CREATE TABLE z3(a INTEGER PRIMARY KEY, b INTEGER, c TEXT)";
        e ctx "CREATE INDEX z3b ON z3(b)";
        batch ctx ~n:size (fun i ->
            e ctx (Printf.sprintf "INSERT INTO z3 VALUES (%d, %d, '%s')" i (i mod 97) (spelled i)))) };
    { id = 130; label = "unindexed range scans with aggregate";
      run = (fun ctx ~size ->
        for k = 1 to 10 do
          q ctx (Printf.sprintf
                   "SELECT count(*), avg(b) FROM z1 WHERE b > %d AND b < %d"
                   (k * size / 10) ((k + 2) * size / 10))
        done) };
    { id = 140; label = "LIKE scans over text";
      run = (fun ctx ~size ->
        ignore size;
        List.iter (fun pat ->
            q ctx (Printf.sprintf "SELECT count(*) FROM z1 WHERE c LIKE '%%%s%%'" pat))
          [ "one"; "two"; "three"; "nine" ]) };
    { id = 142; label = "ORDER BY on unindexed column";
      run = (fun ctx ~size ->
        q ctx (Printf.sprintf "SELECT a, b FROM z1 ORDER BY b LIMIT %d" (size / 4))) };
    { id = 145; label = "ORDER BY with LIMIT and expression";
      run = (fun ctx ~size ->
        q ctx (Printf.sprintf "SELECT a FROM z1 ORDER BY b DESC LIMIT %d" (size / 10))) };
    { id = 150; label = "CREATE INDEX on populated table";
      run = (fun ctx ~size ->
        ignore size;
        e ctx "CREATE INDEX z1b ON z1(b)";
        e ctx "CREATE INDEX z1c ON z1(c)") };
    { id = 160; label = "point SELECTs via PRIMARY KEY";
      run = (fun ctx ~size ->
        for k = 1 to min size 400 do
          q ctx (Printf.sprintf "SELECT b, c FROM z2 WHERE a = %d" ((k * 7 mod size) + 1))
        done) };
    { id = 161; label = "point SELECTs via rowid";
      run = (fun ctx ~size ->
        for k = 1 to min size 400 do
          q ctx (Printf.sprintf "SELECT b FROM z2 WHERE rowid = %d" ((k * 13 mod size) + 1))
        done) };
    { id = 170; label = "point SELECTs via secondary index";
      run = (fun ctx ~size ->
        ignore size;
        for k = 0 to 96 do
          q ctx (Printf.sprintf "SELECT count(*) FROM z3 WHERE b = %d" k)
        done) };
    { id = 180; label = "range UPDATE on unindexed table";
      run = (fun ctx ~size ->
        e ctx (Printf.sprintf "UPDATE z1 SET b = b + 1 WHERE a <= %d" (size / 2))) };
    { id = 190; label = "UPDATE on indexed column";
      run = (fun ctx ~size ->
        e ctx (Printf.sprintf "UPDATE z3 SET b = b + 100 WHERE a <= %d" (size / 2))) };
    { id = 210; label = "schema change: rebuild table";
      run = (fun ctx ~size ->
        ignore size;
        e ctx "CREATE TABLE z1new(a INTEGER, b INTEGER, c TEXT, d INTEGER DEFAULT 7)";
        e ctx "BEGIN";
        let rows = Bench_db.query ctx "SELECT a, b, c FROM z1" in
        List.iter
          (fun row ->
            match row with
            | [ a; b; c ] ->
                e ctx (Printf.sprintf "INSERT INTO z1new(a,b,c) VALUES (%s, %s, '%s')"
                         (Twine_sqldb.Value.to_string a) (Twine_sqldb.Value.to_string b)
                         (String.concat "''" (String.split_on_char '\'' (Twine_sqldb.Value.to_string c))))
            | _ -> ())
          rows;
        e ctx "COMMIT";
        e ctx "DROP TABLE z1";
        e ctx "BEGIN";
        let rows = Bench_db.query ctx "SELECT a, b, c FROM z1new" in
        e ctx "CREATE TABLE z1(a INTEGER, b INTEGER, c TEXT)";
        List.iter
          (fun row ->
            match row with
            | [ a; b; c ] ->
                e ctx (Printf.sprintf "INSERT INTO z1 VALUES (%s, %s, '%s')"
                         (Twine_sqldb.Value.to_string a) (Twine_sqldb.Value.to_string b)
                         (String.concat "''" (String.split_on_char '\'' (Twine_sqldb.Value.to_string c))))
            | _ -> ())
          rows;
        e ctx "COMMIT";
        e ctx "DROP TABLE z1new";
        e ctx "CREATE INDEX z1b ON z1(b)") };
    { id = 230; label = "UPDATE via PRIMARY KEY";
      run = (fun ctx ~size ->
        batch ctx ~n:(min size 300) (fun k ->
            e ctx (Printf.sprintf "UPDATE z2 SET b = b * 2 WHERE a = %d" ((k * 3 mod size) + 1)))) };
    { id = 240; label = "UPDATE of all rows";
      run = (fun ctx ~size ->
        ignore size;
        e ctx "UPDATE z2 SET b = b + 1") };
    { id = 250; label = "UPDATE of every text value";
      run = (fun ctx ~size ->
        ignore size;
        e ctx "UPDATE z1 SET c = c || '!'") };
    { id = 260; label = "wide-range SELECT computing a sum";
      run = (fun ctx ~size ->
        ignore size;
        for _ = 1 to 5 do
          q ctx "SELECT sum(b) FROM z1 WHERE a IS NOT NULL"
        done) };
    { id = 270; label = "range UPDATE with arithmetic";
      run = (fun ctx ~size ->
        e ctx (Printf.sprintf "UPDATE z2 SET b = b * 2 - 1 WHERE a > %d" (size / 3))) };
    { id = 280; label = "range DELETE";
      run = (fun ctx ~size ->
        e ctx (Printf.sprintf "DELETE FROM z3 WHERE a > %d" (3 * size / 4))) };
    { id = 290; label = "re-INSERT after DELETE";
      run = (fun ctx ~size ->
        batch ctx ~n:(size / 4) (fun k ->
            let i = (3 * size / 4) + k in
            e ctx (Printf.sprintf "INSERT INTO z3 VALUES (%d, %d, '%s')" i (i mod 97) (spelled i)))) };
    { id = 300; label = "joined SELECT over two tables";
      run = (fun ctx ~size ->
        ignore size;
        q ctx "SELECT count(*) FROM z2 JOIN z3 ON z2.a = z3.a WHERE z3.b < 50") };
    { id = 400; label = "random point SELECTs (cache-friendly)";
      run = (fun ctx ~size ->
        let drbg = Twine_crypto.Drbg.create ~seed:"st400" () in
        for _ = 1 to min 500 size do
          q ctx (Printf.sprintf "SELECT b FROM z2 WHERE a = %d"
                   (1 + Twine_crypto.Drbg.int_below drbg size))
        done) };
    { id = 410; label = "random range SELECTs overflowing the page cache";
      run = (fun ctx ~size ->
        let drbg = Twine_crypto.Drbg.create ~seed:"st410" () in
        for _ = 1 to min 150 size do
          let lo = 1 + Twine_crypto.Drbg.int_below drbg size in
          q ctx (Printf.sprintf "SELECT sum(b) FROM z2 WHERE a BETWEEN %d AND %d" lo (lo + 50))
        done) };
    { id = 500; label = "random UPDATEs";
      run = (fun ctx ~size ->
        let drbg = Twine_crypto.Drbg.create ~seed:"st500" () in
        batch ctx ~n:(min 300 size) (fun _ ->
            e ctx (Printf.sprintf "UPDATE z2 SET b = b + 7 WHERE a = %d"
                     (1 + Twine_crypto.Drbg.int_below drbg size)))) };
    { id = 510; label = "random point reads across the whole file";
      run = (fun ctx ~size ->
        let drbg = Twine_crypto.Drbg.create ~seed:"st510" () in
        for _ = 1 to min 500 size do
          q ctx (Printf.sprintf "SELECT c FROM z3 WHERE a = %d"
                   (1 + Twine_crypto.Drbg.int_below drbg (3 * size / 4)))
        done) };
    { id = 520; label = "SELECT DISTINCT";
      run = (fun ctx ~size ->
        ignore size;
        q ctx "SELECT DISTINCT b FROM z3";
        q ctx "SELECT DISTINCT c FROM z1 LIMIT 100") };
    { id = 980; label = "VACUUM";
      run = (fun ctx ~size ->
        ignore size;
        e ctx "VACUUM") };
    { id = 990; label = "ANALYZE (query planner statistics)";
      run = (fun ctx ~size ->
        ignore size;
        e ctx "ANALYZE") };
  ]

let test_ids = List.map (fun t -> t.id) tests

(* Run the full suite against a fresh context; returns per-test virtual
   times in ns. *)
let run_suite ?machine ?cache_pages ?ipfs_variant ?wasm_factor variant storage
    ~size () =
  let ctx =
    Bench_db.create ?machine ?cache_pages ?ipfs_variant ?wasm_factor variant storage
  in
  let results =
    List.map
      (fun t ->
        let t0 = Bench_db.now_ns ctx in
        t.run ctx ~size;
        (t.id, Bench_db.now_ns ctx - t0))
      tests
  in
  Bench_db.close ctx;
  results
