lib/twine/microbench.ml: Bench_db Float List Printf Twine_crypto Twine_ipfs Twine_sgx Twine_sim
