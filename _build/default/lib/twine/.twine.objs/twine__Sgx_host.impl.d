lib/twine/sgx_host.ml: Api Bytes Enclave Errno Hashtbl Int64 Machine Protected_fs String Twine_ipfs Twine_sgx Twine_wasi Vfs
