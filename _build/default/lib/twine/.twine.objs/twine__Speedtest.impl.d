lib/twine/speedtest.ml: Array Bench_db List Printf String Twine_crypto Twine_sqldb
