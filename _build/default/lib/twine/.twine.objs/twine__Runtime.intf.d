lib/twine/runtime.mli: Twine_ipfs Twine_sgx Twine_wasm
