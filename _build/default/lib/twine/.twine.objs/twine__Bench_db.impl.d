lib/twine/bench_db.ml: Backing Bytes Costs Db Enclave Float List Machine Option Pager Protected_fs Runtime String Svfs Twine_ipfs Twine_polybench Twine_sgx Twine_sqldb
