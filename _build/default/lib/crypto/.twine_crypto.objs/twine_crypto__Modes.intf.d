lib/crypto/modes.mli: Aes Bytes
