lib/crypto/ccm.mli: Aes
