lib/crypto/hexcodec.mli:
