lib/crypto/gcm.mli: Aes
