lib/crypto/modes.ml: Aes Bytes Char String
