lib/crypto/hmac.mli:
