lib/crypto/drbg.mli:
