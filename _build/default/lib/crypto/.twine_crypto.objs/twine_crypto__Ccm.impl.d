lib/crypto/ccm.ml: Aes Bytes Char Modes String
