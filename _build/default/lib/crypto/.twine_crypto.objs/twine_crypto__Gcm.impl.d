lib/crypto/gcm.ml: Aes Array Bytes Char Int64 Modes String
