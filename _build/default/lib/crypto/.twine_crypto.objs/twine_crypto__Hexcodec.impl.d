lib/crypto/hexcodec.ml: Char Sha256 String
