(** AES-CCM authenticated encryption (NIST SP 800-38C).

    CCM is MAC-then-encrypt: the CBC-MAC is computed over the plaintext, so
    a decryptor can authenticate data that already sits in trusted memory.
    This is the property §V-F of the paper exploits for the optimised
    protected file system (zero-copy reads from untrusted memory). *)

val encrypt :
  Aes.key -> nonce:string -> ?aad:string -> ?tag_len:int -> string -> string * string
(** [encrypt k ~nonce ~aad pt] returns [(ciphertext, tag)]. The nonce must
    be 7–13 bytes; [tag_len] is 4–16 and even (default 16). *)

val decrypt :
  Aes.key -> nonce:string -> ?aad:string -> tag:string -> string -> string option
(** Returns [Some plaintext] when the tag verifies. *)
