(* AES (FIPS 197). The implementation works on a column-major state of four
   32-bit words held in int arrays; round keys are precomputed by [expand].
   Readability is favoured over table-heavy optimisation: the S-box is the
   only lookup table, and MixColumns is computed with xtime. *)

let sbox = [|
  0x63; 0x7c; 0x77; 0x7b; 0xf2; 0x6b; 0x6f; 0xc5; 0x30; 0x01; 0x67; 0x2b;
  0xfe; 0xd7; 0xab; 0x76; 0xca; 0x82; 0xc9; 0x7d; 0xfa; 0x59; 0x47; 0xf0;
  0xad; 0xd4; 0xa2; 0xaf; 0x9c; 0xa4; 0x72; 0xc0; 0xb7; 0xfd; 0x93; 0x26;
  0x36; 0x3f; 0xf7; 0xcc; 0x34; 0xa5; 0xe5; 0xf1; 0x71; 0xd8; 0x31; 0x15;
  0x04; 0xc7; 0x23; 0xc3; 0x18; 0x96; 0x05; 0x9a; 0x07; 0x12; 0x80; 0xe2;
  0xeb; 0x27; 0xb2; 0x75; 0x09; 0x83; 0x2c; 0x1a; 0x1b; 0x6e; 0x5a; 0xa0;
  0x52; 0x3b; 0xd6; 0xb3; 0x29; 0xe3; 0x2f; 0x84; 0x53; 0xd1; 0x00; 0xed;
  0x20; 0xfc; 0xb1; 0x5b; 0x6a; 0xcb; 0xbe; 0x39; 0x4a; 0x4c; 0x58; 0xcf;
  0xd0; 0xef; 0xaa; 0xfb; 0x43; 0x4d; 0x33; 0x85; 0x45; 0xf9; 0x02; 0x7f;
  0x50; 0x3c; 0x9f; 0xa8; 0x51; 0xa3; 0x40; 0x8f; 0x92; 0x9d; 0x38; 0xf5;
  0xbc; 0xb6; 0xda; 0x21; 0x10; 0xff; 0xf3; 0xd2; 0xcd; 0x0c; 0x13; 0xec;
  0x5f; 0x97; 0x44; 0x17; 0xc4; 0xa7; 0x7e; 0x3d; 0x64; 0x5d; 0x19; 0x73;
  0x60; 0x81; 0x4f; 0xdc; 0x22; 0x2a; 0x90; 0x88; 0x46; 0xee; 0xb8; 0x14;
  0xde; 0x5e; 0x0b; 0xdb; 0xe0; 0x32; 0x3a; 0x0a; 0x49; 0x06; 0x24; 0x5c;
  0xc2; 0xd3; 0xac; 0x62; 0x91; 0x95; 0xe4; 0x79; 0xe7; 0xc8; 0x37; 0x6d;
  0x8d; 0xd5; 0x4e; 0xa9; 0x6c; 0x56; 0xf4; 0xea; 0x65; 0x7a; 0xae; 0x08;
  0xba; 0x78; 0x25; 0x2e; 0x1c; 0xa6; 0xb4; 0xc6; 0xe8; 0xdd; 0x74; 0x1f;
  0x4b; 0xbd; 0x8b; 0x8a; 0x70; 0x3e; 0xb5; 0x66; 0x48; 0x03; 0xf6; 0x0e;
  0x61; 0x35; 0x57; 0xb9; 0x86; 0xc1; 0x1d; 0x9e; 0xe1; 0xf8; 0x98; 0x11;
  0x69; 0xd9; 0x8e; 0x94; 0x9b; 0x1e; 0x87; 0xe9; 0xce; 0x55; 0x28; 0xdf;
  0x8c; 0xa1; 0x89; 0x0d; 0xbf; 0xe6; 0x42; 0x68; 0x41; 0x99; 0x2d; 0x0f;
  0xb0; 0x54; 0xbb; 0x16 |]

let inv_sbox =
  let t = Array.make 256 0 in
  Array.iteri (fun i v -> t.(v) <- i) sbox;
  t

type key = { rounds : int; rk : int array; bits : int }
(* [rk] holds 4*(rounds+1) round-key words, big-endian packed. *)

let key_bits k = k.bits

let rcon = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 |]

let sub_word w =
  (sbox.((w lsr 24) land 0xff) lsl 24)
  lor (sbox.((w lsr 16) land 0xff) lsl 16)
  lor (sbox.((w lsr 8) land 0xff) lsl 8)
  lor sbox.(w land 0xff)

let rot_word w = ((w lsl 8) lor (w lsr 24)) land 0xffffffff

let expand raw =
  let nk =
    match String.length raw with
    | 16 -> 4
    | 24 -> 6
    | 32 -> 8
    | n -> invalid_arg (Printf.sprintf "Aes.expand: bad key length %d" n)
  in
  let rounds = nk + 6 in
  let nwords = 4 * (rounds + 1) in
  let rk = Array.make nwords 0 in
  for i = 0 to nk - 1 do
    rk.(i) <-
      (Char.code raw.[4 * i] lsl 24)
      lor (Char.code raw.[(4 * i) + 1] lsl 16)
      lor (Char.code raw.[(4 * i) + 2] lsl 8)
      lor Char.code raw.[(4 * i) + 3]
  done;
  for i = nk to nwords - 1 do
    let temp = rk.(i - 1) in
    let temp =
      if i mod nk = 0 then sub_word (rot_word temp) lxor (rcon.((i / nk) - 1) lsl 24)
      else if nk > 6 && i mod nk = 4 then sub_word temp
      else temp
    in
    rk.(i) <- rk.(i - nk) lxor temp
  done;
  { rounds; rk; bits = nk * 32 }

let xtime b = if b land 0x80 <> 0 then ((b lsl 1) lxor 0x1b) land 0xff else (b lsl 1) land 0xff

(* Multiply a state byte by a small GF(2^8) constant. *)
let gmul b = function
  | 1 -> b
  | 2 -> xtime b
  | 3 -> xtime b lxor b
  | 9 -> xtime (xtime (xtime b)) lxor b
  | 11 -> xtime (xtime (xtime b) lxor b) lxor b
  | 13 -> xtime (xtime (xtime b lxor b)) lxor b
  | 14 -> xtime (xtime (xtime b lxor b) lxor b)
  | c -> invalid_arg (Printf.sprintf "Aes.gmul: %d" c)

(* The state is a 16-element int array laid out as FIPS 197 columns:
   state.(4*c + r) is row r, column c. *)

let add_round_key st rk round =
  for c = 0 to 3 do
    let w = rk.((4 * round) + c) in
    st.(4 * c) <- st.(4 * c) lxor ((w lsr 24) land 0xff);
    st.((4 * c) + 1) <- st.((4 * c) + 1) lxor ((w lsr 16) land 0xff);
    st.((4 * c) + 2) <- st.((4 * c) + 2) lxor ((w lsr 8) land 0xff);
    st.((4 * c) + 3) <- st.((4 * c) + 3) lxor (w land 0xff)
  done

let sub_bytes st = for i = 0 to 15 do st.(i) <- sbox.(st.(i)) done
let inv_sub_bytes st = for i = 0 to 15 do st.(i) <- inv_sbox.(st.(i)) done

let shift_rows st =
  let at r c = st.((4 * c) + r) in
  let row r s =
    let v = [| at r 0; at r 1; at r 2; at r 3 |] in
    for c = 0 to 3 do st.((4 * c) + r) <- v.((c + s) mod 4) done
  in
  row 1 1; row 2 2; row 3 3

let inv_shift_rows st =
  let at r c = st.((4 * c) + r) in
  let row r s =
    let v = [| at r 0; at r 1; at r 2; at r 3 |] in
    for c = 0 to 3 do st.((4 * c) + r) <- v.((c - s + 4) mod 4) done
  in
  row 1 1; row 2 2; row 3 3

let mix_columns st =
  for c = 0 to 3 do
    let a0 = st.(4 * c) and a1 = st.((4 * c) + 1)
    and a2 = st.((4 * c) + 2) and a3 = st.((4 * c) + 3) in
    st.(4 * c) <- gmul a0 2 lxor gmul a1 3 lxor a2 lxor a3;
    st.((4 * c) + 1) <- a0 lxor gmul a1 2 lxor gmul a2 3 lxor a3;
    st.((4 * c) + 2) <- a0 lxor a1 lxor gmul a2 2 lxor gmul a3 3;
    st.((4 * c) + 3) <- gmul a0 3 lxor a1 lxor a2 lxor gmul a3 2
  done

let inv_mix_columns st =
  for c = 0 to 3 do
    let a0 = st.(4 * c) and a1 = st.((4 * c) + 1)
    and a2 = st.((4 * c) + 2) and a3 = st.((4 * c) + 3) in
    st.(4 * c) <- gmul a0 14 lxor gmul a1 11 lxor gmul a2 13 lxor gmul a3 9;
    st.((4 * c) + 1) <- gmul a0 9 lxor gmul a1 14 lxor gmul a2 11 lxor gmul a3 13;
    st.((4 * c) + 2) <- gmul a0 13 lxor gmul a1 9 lxor gmul a2 14 lxor gmul a3 11;
    st.((4 * c) + 3) <- gmul a0 11 lxor gmul a1 13 lxor gmul a2 9 lxor gmul a3 14
  done

let load_state src off st =
  for i = 0 to 15 do st.(i) <- Char.code (Bytes.get src (off + i)) done

let store_state st dst off =
  for i = 0 to 15 do Bytes.set dst (off + i) (Char.chr st.(i)) done

let encrypt_block k src ~src_off dst ~dst_off =
  let st = Array.make 16 0 in
  load_state src src_off st;
  add_round_key st k.rk 0;
  for round = 1 to k.rounds - 1 do
    sub_bytes st; shift_rows st; mix_columns st; add_round_key st k.rk round
  done;
  sub_bytes st; shift_rows st; add_round_key st k.rk k.rounds;
  store_state st dst dst_off

let decrypt_block k src ~src_off dst ~dst_off =
  let st = Array.make 16 0 in
  load_state src src_off st;
  add_round_key st k.rk k.rounds;
  for round = k.rounds - 1 downto 1 do
    inv_shift_rows st; inv_sub_bytes st; add_round_key st k.rk round; inv_mix_columns st
  done;
  inv_shift_rows st; inv_sub_bytes st; add_round_key st k.rk 0;
  store_state st dst dst_off

let encrypt_block_str k s =
  if String.length s <> 16 then invalid_arg "Aes.encrypt_block_str: need 16 bytes";
  let b = Bytes.of_string s in
  encrypt_block k b ~src_off:0 b ~dst_off:0;
  Bytes.to_string b

let decrypt_block_str k s =
  if String.length s <> 16 then invalid_arg "Aes.decrypt_block_str: need 16 bytes";
  let b = Bytes.of_string s in
  decrypt_block k b ~src_off:0 b ~dst_off:0;
  Bytes.to_string b
