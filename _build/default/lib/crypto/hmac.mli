(** HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869). *)

val hmac_sha256 : key:string -> string -> string
(** 32-byte MAC. *)

val hkdf_extract : ?salt:string -> string -> string
(** [hkdf_extract ?salt ikm] returns a 32-byte pseudorandom key. *)

val hkdf_expand : prk:string -> info:string -> length:int -> string
(** Expand a PRK into [length] bytes (max 255*32). *)

val derive : key:string -> info:string -> length:int -> string
(** One-shot extract-then-expand; used for SGX key derivation. *)
