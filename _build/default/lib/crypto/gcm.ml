(* GHASH is computed with a per-key 16x256 table: entry [t.(j).(b)] is the
   GF(2^128) product of H and the byte value [b] placed at byte position
   [j] of the input block, so one multiplication is 16 table lookups and
   xors. The table is built from the 128 "powers" H * alpha^i. *)

type u128 = { hi : int64; lo : int64 }

let zero = { hi = 0L; lo = 0L }
let ( ^^ ) a b = { hi = Int64.logxor a.hi b.hi; lo = Int64.logxor a.lo b.lo }

(* Multiply by alpha (right shift by one bit with reduction poly R). *)
let shift_right_reduce v =
  let lsb = Int64.logand v.lo 1L in
  let lo = Int64.logor (Int64.shift_right_logical v.lo 1) (Int64.shift_left v.hi 63) in
  let hi = Int64.shift_right_logical v.hi 1 in
  if lsb = 1L then { hi = Int64.logxor hi 0xe100000000000000L; lo } else { hi; lo }

type key = { aes : Aes.key; table : u128 array array }

let block_of_string s off =
  let get i = Int64.of_int (Char.code s.[off + i]) in
  let word base =
    let v = ref 0L in
    for i = 0 to 7 do
      v := Int64.logor (Int64.shift_left !v 8) (get (base + i))
    done;
    !v
  in
  { hi = word 0; lo = word 8 }

let string_of_block v =
  String.init 16 (fun i ->
      let w = if i < 8 then v.hi else v.lo in
      Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical w (8 * (7 - (i mod 8)))) 0xffL)))

let of_aes aes =
  let h = block_of_string (Aes.encrypt_block_str aes (String.make 16 '\000')) 0 in
  (* powers.(i) = H * alpha^i for MSB-first bit index i *)
  let powers = Array.make 128 zero in
  powers.(0) <- h;
  for i = 1 to 127 do
    powers.(i) <- shift_right_reduce powers.(i - 1)
  done;
  let table =
    Array.init 16 (fun j ->
        Array.init 256 (fun b ->
            let acc = ref zero in
            for bit = 0 to 7 do
              if b land (0x80 lsr bit) <> 0 then acc := !acc ^^ powers.((8 * j) + bit)
            done;
            !acc))
  in
  { aes; table }

let of_raw raw = of_aes (Aes.expand raw)

let gmul k x =
  let acc = ref zero in
  let s = string_of_block x in
  for j = 0 to 15 do
    acc := !acc ^^ k.table.(j).(Char.code s.[j])
  done;
  !acc

let ghash_update k acc block = gmul k (acc ^^ block)

(* GHASH over a string padded with zeros to a block multiple. *)
let ghash_string k acc s =
  let n = String.length s in
  let acc = ref acc in
  let full = n / 16 in
  for i = 0 to full - 1 do
    acc := ghash_update k !acc (block_of_string s (16 * i))
  done;
  let rem = n - (16 * full) in
  if rem > 0 then begin
    let last = Bytes.make 16 '\000' in
    Bytes.blit_string s (16 * full) last 0 rem;
    acc := ghash_update k !acc (block_of_string (Bytes.to_string last) 0)
  end;
  !acc

let len_block aad_len ct_len =
  { hi = Int64.of_int (8 * aad_len); lo = Int64.of_int (8 * ct_len) }

let j0 iv =
  if String.length iv <> 12 then invalid_arg "Gcm: IV must be 12 bytes";
  let b = Bytes.make 16 '\000' in
  Bytes.blit_string iv 0 b 0 12;
  Bytes.set b 15 '\001';
  b

let compute_tag k ~iv ~aad ct =
  let acc = ghash_string k zero aad in
  let acc = ghash_string k acc ct in
  let acc = ghash_update k acc (len_block (String.length aad) (String.length ct)) in
  let ek_j0 = Bytes.create 16 in
  Aes.encrypt_block k.aes (j0 iv) ~src_off:0 ek_j0 ~dst_off:0;
  let tag = Bytes.of_string (string_of_block acc) in
  Modes.xor_into ~src:(Bytes.to_string ek_j0) tag ~off:0 ~len:16;
  Bytes.to_string tag

let encrypt k ~iv ?(aad = "") plaintext =
  let counter = j0 iv in
  Modes.inc32 counter;
  let buf = Bytes.of_string plaintext in
  Modes.ctr_transform k.aes ~counter buf ~off:0 ~len:(Bytes.length buf);
  let ct = Bytes.to_string buf in
  (ct, compute_tag k ~iv ~aad ct)

let decrypt k ~iv ?(aad = "") ~tag ciphertext =
  let expected = compute_tag k ~iv ~aad ciphertext in
  if not (Modes.ct_equal expected tag) then None
  else begin
    let counter = j0 iv in
    Modes.inc32 counter;
    let buf = Bytes.of_string ciphertext in
    Modes.ctr_transform k.aes ~counter buf ~off:0 ~len:(Bytes.length buf);
    Some (Bytes.to_string buf)
  end
