(** Hex encoding/decoding helpers (used pervasively in tests and tools). *)

val encode : string -> string
(** Lowercase hex of a raw string. *)

val decode : string -> string
(** Inverse of {!encode}; accepts upper or lower case.
    @raise Invalid_argument on odd length or non-hex characters. *)
