let xor_into ~src buf ~off ~len =
  for i = 0 to len - 1 do
    Bytes.set buf (off + i)
      (Char.chr (Char.code (Bytes.get buf (off + i)) lxor Char.code src.[i]))
  done

let ct_equal a b =
  String.length a = String.length b
  && begin
       let acc = ref 0 in
       String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code b.[i])) a;
       !acc = 0
     end

let inc32 block =
  let rec bump i =
    if i >= 12 then begin
      let v = (Char.code (Bytes.get block i) + 1) land 0xff in
      Bytes.set block i (Char.chr v);
      if v = 0 then bump (i - 1)
    end
  in
  bump 15

let ctr_transform key ~counter buf ~off ~len =
  let ks = Bytes.create 16 in
  let pos = ref 0 in
  while !pos < len do
    Aes.encrypt_block key counter ~src_off:0 ks ~dst_off:0;
    inc32 counter;
    let n = min 16 (len - !pos) in
    for i = 0 to n - 1 do
      Bytes.set buf (off + !pos + i)
        (Char.chr
           (Char.code (Bytes.get buf (off + !pos + i))
           lxor Char.code (Bytes.get ks i)))
    done;
    pos := !pos + 16
  done
