type t = { mutable k : string; mutable v : string }

let update t provided =
  t.k <- Hmac.hmac_sha256 ~key:t.k (t.v ^ "\x00" ^ provided);
  t.v <- Hmac.hmac_sha256 ~key:t.k t.v;
  if provided <> "" then begin
    t.k <- Hmac.hmac_sha256 ~key:t.k (t.v ^ "\x01" ^ provided);
    t.v <- Hmac.hmac_sha256 ~key:t.k t.v
  end

let create ?(personalization = "") ~seed () =
  let t = { k = String.make 32 '\000'; v = String.make 32 '\001' } in
  update t (seed ^ personalization);
  t

let reseed t entropy = update t entropy

let generate t n =
  if n < 0 then invalid_arg "Drbg.generate";
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    t.v <- Hmac.hmac_sha256 ~key:t.k t.v;
    Buffer.add_string buf t.v
  done;
  update t "";
  String.sub (Buffer.contents buf) 0 n

let uint64 t =
  let s = generate t 8 in
  let v = ref 0L in
  String.iter (fun c -> v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code c))) s;
  !v

let int_below t bound =
  if bound <= 0 then invalid_arg "Drbg.int_below";
  (* Rejection sampling over 62-bit values to avoid modulo bias. *)
  let rec go () =
    let v = Int64.to_int (Int64.logand (uint64 t) 0x3fffffffffffffffL) in
    let limit = 0x3fffffffffffffff - (0x3fffffffffffffff mod bound) in
    if v >= limit then go () else v mod bound
  in
  go ()
