(** AES block cipher (FIPS 197), 128/192/256-bit keys.

    This is the trusted-library building block used by the Intel Protected
    File System simulation ({!Twine_ipfs}) and by SGX sealing. Only the raw
    16-byte block transform is exposed here; authenticated modes live in
    {!Gcm} and {!Ccm}, and counter mode in {!Modes}. *)

type key
(** An expanded key schedule. *)

val expand : string -> key
(** [expand k] expands a raw key of 16, 24 or 32 bytes.
    @raise Invalid_argument on any other length. *)

val key_bits : key -> int
(** Key size in bits (128, 192 or 256). *)

val encrypt_block : key -> Bytes.t -> src_off:int -> Bytes.t -> dst_off:int -> unit
(** [encrypt_block k src ~src_off dst ~dst_off] encrypts the 16-byte block
    at [src_off] into [dst] at [dst_off]. [src] and [dst] may alias. *)

val decrypt_block : key -> Bytes.t -> src_off:int -> Bytes.t -> dst_off:int -> unit
(** Inverse cipher of {!encrypt_block}. *)

val encrypt_block_str : key -> string -> string
(** Convenience: encrypt one 16-byte block given and returned as strings. *)

val decrypt_block_str : key -> string -> string
