(** SHA-256 (FIPS 180-4), incremental and one-shot. *)

type ctx

val init : unit -> ctx
val update : ctx -> string -> unit
val update_bytes : ctx -> Bytes.t -> off:int -> len:int -> unit

val finalize : ctx -> string
(** 32-byte digest. The context must not be reused afterwards. *)

val digest : string -> string
(** One-shot hash of a full string; 32-byte digest. *)

val hex : string -> string
(** Lowercase hex encoding of an arbitrary string. *)
