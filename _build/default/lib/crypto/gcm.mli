(** AES-GCM authenticated encryption (NIST SP 800-38D).

    This is the cipher used by the stock Intel Protected File System: each
    4 KiB node is sealed with AES-GCM (encrypt-then-MAC). Tags are 16
    bytes; IVs must be 12 bytes (the only length IPFS uses). *)

type key

val of_aes : Aes.key -> key
(** Derive the GHASH tables from an AES key (one-time per-key cost). *)

val of_raw : string -> key
(** [of_raw k] = [of_aes (Aes.expand k)]. *)

val encrypt : key -> iv:string -> ?aad:string -> string -> string * string
(** [encrypt k ~iv ~aad plaintext] returns [(ciphertext, tag)]. *)

val decrypt : key -> iv:string -> ?aad:string -> tag:string -> string -> string option
(** Returns [Some plaintext] if the tag verifies, [None] otherwise. *)
