(** Unauthenticated block-cipher modes and shared helpers. *)

val ctr_transform :
  Aes.key -> counter:Bytes.t -> Bytes.t -> off:int -> len:int -> unit
(** [ctr_transform k ~counter buf ~off ~len] encrypts (or, identically,
    decrypts) [len] bytes of [buf] in place with AES-CTR. [counter] is the
    initial 16-byte counter block and is advanced (big-endian increment of
    the last 32 bits) as blocks are consumed; it is mutated. *)

val xor_into : src:string -> Bytes.t -> off:int -> len:int -> unit
(** XOR [len] bytes of [src] into [buf] starting at [off]. *)

val ct_equal : string -> string -> bool
(** Constant-time equality of equal-length strings (false on length
    mismatch). Used for MAC verification. *)

val inc32 : Bytes.t -> unit
(** Big-endian increment of the last 4 bytes of a 16-byte block. *)
