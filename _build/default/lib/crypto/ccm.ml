(* NIST SP 800-38C with the usual RFC 3610 formatting function. The length
   field width is q = 15 - nonce_len. *)

let check_params ~nonce ~tag_len =
  let n = String.length nonce in
  if n < 7 || n > 13 then invalid_arg "Ccm: nonce must be 7..13 bytes";
  if tag_len < 4 || tag_len > 16 || tag_len mod 2 <> 0 then
    invalid_arg "Ccm: tag_len must be even, 4..16";
  15 - n

let cbc_mac key ~nonce ~aad ~tag_len pt =
  let q = check_params ~nonce ~tag_len in
  let n = String.length nonce in
  let plen = String.length pt in
  let b0 = Bytes.make 16 '\000' in
  let flags =
    (if aad <> "" then 0x40 else 0)
    lor (((tag_len - 2) / 2) lsl 3)
    lor (q - 1)
  in
  Bytes.set b0 0 (Char.chr flags);
  Bytes.blit_string nonce 0 b0 1 n;
  for i = 0 to q - 1 do
    Bytes.set b0 (15 - i) (Char.chr ((plen lsr (8 * i)) land 0xff))
  done;
  let mac = Bytes.create 16 in
  Aes.encrypt_block key b0 ~src_off:0 mac ~dst_off:0;
  let absorb_block block off len =
    for i = 0 to len - 1 do
      Bytes.set mac i
        (Char.chr (Char.code (Bytes.get mac i) lxor Char.code (Bytes.get block (off + i))))
    done;
    Aes.encrypt_block key mac ~src_off:0 mac ~dst_off:0
  in
  (* Associated data with its length prefix, zero-padded to blocks. *)
  if aad <> "" then begin
    let alen = String.length aad in
    let header =
      if alen < 0xff00 then
        let b = Bytes.create 2 in
        Bytes.set b 0 (Char.chr (alen lsr 8));
        Bytes.set b 1 (Char.chr (alen land 0xff));
        Bytes.to_string b
      else
        (* 0xfffe prefix + 32-bit length *)
        let b = Bytes.create 6 in
        Bytes.set b 0 '\xff'; Bytes.set b 1 '\xfe';
        for i = 0 to 3 do
          Bytes.set b (2 + i) (Char.chr ((alen lsr (8 * (3 - i))) land 0xff))
        done;
        Bytes.to_string b
    in
    let full = header ^ aad in
    let padded_len = ((String.length full + 15) / 16) * 16 in
    let padded = Bytes.make padded_len '\000' in
    Bytes.blit_string full 0 padded 0 (String.length full);
    for i = 0 to (padded_len / 16) - 1 do
      absorb_block padded (16 * i) 16
    done
  end;
  (* Payload, zero-padded. *)
  if plen > 0 then begin
    let padded_len = ((plen + 15) / 16) * 16 in
    let padded = Bytes.make padded_len '\000' in
    Bytes.blit_string pt 0 padded 0 plen;
    for i = 0 to (padded_len / 16) - 1 do
      absorb_block padded (16 * i) 16
    done
  end;
  Bytes.to_string mac

let counter_block ~nonce i =
  let q = 15 - String.length nonce in
  let b = Bytes.make 16 '\000' in
  Bytes.set b 0 (Char.chr (q - 1));
  Bytes.blit_string nonce 0 b 1 (String.length nonce);
  for j = 0 to q - 1 do
    Bytes.set b (15 - j) (Char.chr ((i lsr (8 * j)) land 0xff))
  done;
  b

let ctr_stream key ~nonce buf =
  (* A_1.. blocks encrypt the payload; A_0 encrypts the MAC. *)
  let len = Bytes.length buf in
  let ks = Bytes.create 16 in
  let pos = ref 0 and i = ref 1 in
  while !pos < len do
    Aes.encrypt_block key (counter_block ~nonce !i) ~src_off:0 ks ~dst_off:0;
    let n = min 16 (len - !pos) in
    for j = 0 to n - 1 do
      Bytes.set buf (!pos + j)
        (Char.chr (Char.code (Bytes.get buf (!pos + j)) lxor Char.code (Bytes.get ks j)))
    done;
    pos := !pos + 16;
    incr i
  done

let mac_mask key ~nonce =
  let ks = Bytes.create 16 in
  Aes.encrypt_block key (counter_block ~nonce 0) ~src_off:0 ks ~dst_off:0;
  Bytes.to_string ks

let encrypt key ~nonce ?(aad = "") ?(tag_len = 16) pt =
  let mac = cbc_mac key ~nonce ~aad ~tag_len pt in
  let mask = mac_mask key ~nonce in
  let tag =
    String.init tag_len (fun i -> Char.chr (Char.code mac.[i] lxor Char.code mask.[i]))
  in
  let buf = Bytes.of_string pt in
  ctr_stream key ~nonce buf;
  (Bytes.to_string buf, tag)

let decrypt key ~nonce ?(aad = "") ~tag ciphertext =
  let tag_len = String.length tag in
  if tag_len < 4 || tag_len > 16 || tag_len mod 2 <> 0 then None
  else begin
    let buf = Bytes.of_string ciphertext in
    ctr_stream key ~nonce buf;
    let pt = Bytes.to_string buf in
    let mac = cbc_mac key ~nonce ~aad ~tag_len pt in
    let mask = mac_mask key ~nonce in
    let expected =
      String.init tag_len (fun i -> Char.chr (Char.code mac.[i] lxor Char.code mask.[i]))
    in
    if Modes.ct_equal expected tag then Some pt else None
  end
