(** HMAC_DRBG with SHA-256 (NIST SP 800-90A).

    Deterministic random generation: SGX-simulated enclaves use an instance
    seeded from the enclave identity so experiments are reproducible, and
    the WASI [random_get] trusted implementation draws from it. *)

type t

val create : ?personalization:string -> seed:string -> unit -> t
val reseed : t -> string -> unit

val generate : t -> int -> string
(** [generate t n] produces [n] pseudorandom bytes. *)

val uint64 : t -> int64
val int_below : t -> int -> int
(** Uniform in [0, bound); rejection-sampled. @raise Invalid_argument if bound <= 0. *)
