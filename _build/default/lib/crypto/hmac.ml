let block_size = 64

let hmac_sha256 ~key msg =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let pad fill =
    let b = Bytes.make block_size fill in
    String.iteri
      (fun i c -> Bytes.set b i (Char.chr (Char.code c lxor Char.code fill)))
      key;
    Bytes.to_string b
  in
  let ipad = pad '\x36' and opad = pad '\x5c' in
  Sha256.digest (opad ^ Sha256.digest (ipad ^ msg))

let hkdf_extract ?(salt = "") ikm =
  let salt = if salt = "" then String.make 32 '\000' else salt in
  hmac_sha256 ~key:salt ikm

let hkdf_expand ~prk ~info ~length =
  if length < 0 || length > 255 * 32 then invalid_arg "Hmac.hkdf_expand: length";
  let buf = Buffer.create length in
  let rec go t i =
    if Buffer.length buf >= length then ()
    else begin
      let t = hmac_sha256 ~key:prk (t ^ info ^ String.make 1 (Char.chr i)) in
      Buffer.add_string buf t;
      go t (i + 1)
    end
  in
  go "" 1;
  String.sub (Buffer.contents buf) 0 length

let derive ~key ~info ~length = hkdf_expand ~prk:(hkdf_extract key) ~info ~length
